//! Figures 8–10 — real application workloads, one MOCC model for all.
//!
//! Fig. 8: ABR video streaming (MOCC registered <0.8,0.1,0.1>) —
//!         throughput and chunk-quality histogram.
//! Fig. 9: real-time communications (MOCC <0.4,0.5,0.1>) —
//!         inter-packet delay.
//! Fig. 10: bulk transfer with 0.5 % background loss (MOCC <1,0,0>) —
//!          FCT mean and standard deviation.

use mocc_apps::bulk::{run_bulk, BulkConfig};
use mocc_apps::rtc::{RtcConfig, RtcSource};
use mocc_apps::video::{VideoConfig, VideoSource};
use mocc_bench::{header, row, with_agent_mi, Scheme};
use mocc_core::Preference;
use mocc_netsim::{Scenario, Simulator};

fn app_schemes(pref: Preference) -> Vec<Scheme> {
    vec![
        Scheme::Mocc(pref),
        Scheme::Baseline("cubic"),
        Scheme::Baseline("bbr"),
        Scheme::Baseline("vegas"),
    ]
}

fn main() {
    let full = mocc_bench::full_scale();
    let _ = mocc_bench::trained_mocc();

    // ---------------- Fig. 8: video streaming ----------------
    println!("== Figure 8: ABR video streaming (6 Mbps access link, 20 ms) ==");
    let chunks = if full { 25 } else { 15 };
    header(
        "scheme",
        &[
            "thr Mbps".into(),
            "avg kbps".into(),
            "rebuf s".into(),
            "L0".into(),
            "L1".into(),
            "L2".into(),
            "L3".into(),
            "L4".into(),
            "L5".into(),
        ],
        9,
    );
    for scheme in app_schemes(Preference::throughput()) {
        let cfg = VideoConfig {
            total_chunks: chunks,
            ..Default::default()
        };
        // 1 % background loss models the paper's real WiFi/Internet path;
        // this is where loss-based heuristics fall behind.
        let sc = with_agent_mi(Scenario::single(6e6, 20, 600, 0.01, 300));
        let (src, handle) = VideoSource::new(cfg.clone());
        let mut sim = Simulator::new(sc, vec![scheme.make(1.5e6)]);
        sim.set_app(0, Box::new(src));
        let _ = sim.run();
        let stats = handle.stats();
        let thr = if stats.chunk_throughput_mbps.is_empty() {
            0.0
        } else {
            stats.chunk_throughput_mbps.iter().sum::<f64>()
                / stats.chunk_throughput_mbps.len() as f64
        };
        let hist = stats.level_histogram(6);
        let mut vals = vec![thr, stats.avg_bitrate_kbps(&cfg), stats.rebuffer_secs];
        vals.extend(hist.iter().map(|&c| c as f64));
        row(&scheme.label(), &vals, 9, 1);
    }
    println!(
        "(paper: MOCC highest throughput and most level-5 chunks: 14 vs 9 BBR / 2 CUBIC / 0 Vegas)"
    );

    // ---------------- Fig. 9: real-time communications ----------------
    println!("\n== Figure 9: RTC inter-packet delay (5 Mbps, 15 ms, 30 s call) ==");
    header(
        "scheme",
        &[
            "mean ms".into(),
            "p95 ms".into(),
            "pkts".into(),
            "drops".into(),
        ],
        10,
    );
    let mut rtc_schemes = app_schemes(Preference::new(0.4, 0.5, 0.1));
    // A second MOCC registration showing the weight trade-off at our
    // training scale (see EXPERIMENTS.md).
    rtc_schemes.insert(1, Scheme::Mocc(Preference::new(0.6, 0.3, 0.1)));
    for scheme in rtc_schemes {
        let sc = with_agent_mi(Scenario::single(5e6, 15, 400, 0.001, 30));
        let (src, handle) = RtcSource::new(RtcConfig::default());
        let mut sim = Simulator::new(sc, vec![scheme.make(2e6)]);
        sim.set_app(0, Box::new(src));
        let _ = sim.run();
        let s = handle.stats();
        row(
            &scheme.label(),
            &[
                s.mean_inter_packet_ms,
                s.p95_inter_packet_ms,
                s.packets as f64,
                s.frames_dropped as f64,
            ],
            10,
            2,
        );
    }
    println!("(paper: MOCC lowest inter-packet delay: 3.0 ms vs 3.8 BBR / 7.9 CUBIC / 4.1 Vegas)");

    // ---------------- Fig. 10: bulk transfer ----------------
    println!("\n== Figure 10: bulk transfer FCT (12.5 MB file, 0.5% loss) ==");
    let cfg = BulkConfig {
        trials: if full { 50 } else { 15 },
        ..Default::default()
    };
    header(
        "scheme",
        &["mean s".into(), "std s".into(), "incomplete".into()],
        12,
    );
    for scheme in app_schemes(Preference::new(1.0, 0.0, 0.0)) {
        let stats = run_bulk(&cfg, || scheme.make(3e6));
        row(
            &scheme.label(),
            &[stats.mean_fct(), stats.std_fct(), stats.incomplete as f64],
            12,
            3,
        );
    }
    println!("(paper: MOCC lowest mean FCT (8.83 s) and lowest std (0.096))");
}
