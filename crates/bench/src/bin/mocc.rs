//! `mocc` — the spec-file CLI: validate and run declarative
//! experiments end to end, no recompilation.
//!
//! ```text
//! mocc run <spec.json> [--threads N] [--batch N] [--fast-math] [--out FILE] [--cache] [--cache-dir DIR]
//! mocc hunt <spec.json> [--budget N] [--baseline SCHEME] [--out-dir DIR] [--seed N] [--threads N]
//! mocc train <spec.json> [--zoo DIR] [--resume DIR] [--out FILE] [--max-iters N]
//! mocc validate <spec.json>...
//! mocc list-schemes
//! mocc cache stats|verify|gc [--cache-dir DIR] [--older-than-days N]
//! mocc serve [--cache-dir DIR] [--socket PATH] [--threads N]
//! mocc audit [ROOT] [--format json|text] [--rule ID]
//! ```
//!
//! `run` loads an [`ExperimentSpec`] document (see `docs/SPECS.md`),
//! validates it against the scheme registry, executes it — including
//! `mocc` schemes, whose policy the spec's `policy` section pins
//! reproducibly — and writes the canonical-JSON report to stdout (or
//! `--out`). The report is byte-identical for any `--threads` value.
//! With `--cache` the run is memoized per cell through the
//! content-addressed result store (see `docs/CACHING.md`): cells seen
//! before are served from disk, only missing cells are simulated, and
//! the report bytes are identical either way.
//!
//! `hunt` runs the coverage-guided adversarial search
//! (`mocc_core::hunt`, see `docs/EVALUATION.md`): starting from a
//! sweep spec whose scheme is a `mocc` label, it mutates the scenario
//! axes under a seeded RNG, scores the policy against a baseline
//! scheme on each candidate cell, and writes every losing regime to
//! `--out-dir` as a ready-to-run spec file that `mocc validate`
//! accepts.
//!
//! `train` runs a [`TrainSpec`] document (see `docs/TRAINING.md`)
//! through the checkpointed offline trainer and lands the artifact in
//! the model zoo (`models/` by default) with provenance — spec digest,
//! seed, iteration count, final eval metrics. Runs checkpoint
//! periodically; a killed run resumed with `--resume` produces a
//! byte-identical final model.
//!
//! `validate` checks documents without running anything — experiment
//! and train specs alike, dispatching on the document's `kind` — and
//! every problem is a typed [`SpecError`] naming the offending label
//! or field. `list-schemes` prints the scheme vocabulary and the label
//! grammar. `cache` inspects and maintains the store; `serve` answers
//! spec requests over a line-delimited JSON protocol (stdin/stdout,
//! or a Unix socket with `--socket`), sharing one store across
//! clients.
//!
//! `audit` runs the workspace's static-analysis pass (`mocc-audit`,
//! see `docs/AUDIT.md`): byte-determinism and unsafe-hygiene contract
//! rules over every workspace crate, exiting nonzero on any finding.
//!
//! [`SpecError`]: mocc_eval::SpecError
//! [`TrainSpec`]: mocc_core::TrainSpec

use mocc_core::{TrainOptions, TrainSpec};
use mocc_eval::{ExperimentSpec, SchemeRegistry, SweepRunner};
use mocc_store::ResultStore;
use serde::{Deserialize, Serialize, Value};
use std::collections::BTreeMap;
use std::io::{BufRead, Read, Write};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

const USAGE: &str = "\
mocc — run declarative MOCC experiment specs (docs/SPECS.md)

USAGE:
    mocc run <spec.json> [--threads N] [--batch N] [--fast-math] [--out FILE] [--cache] [--cache-dir DIR]
    mocc hunt <spec.json> [--budget N] [--baseline SCHEME] [--out-dir DIR] [--seed N] [--threads N]
    mocc train <spec.json> [--zoo DIR] [--resume DIR] [--out FILE] [--max-iters N]
    mocc validate <spec.json>...
    mocc list-schemes
    mocc cache stats|verify|gc [--cache-dir DIR] [--older-than-days N]
    mocc serve [--cache-dir DIR] [--socket PATH] [--threads N]
    mocc audit [ROOT] [--format json|text] [--rule ID]

OPTIONS (run):
    --threads N   worker threads (default: MOCC_SWEEP_THREADS or all cores)
    --batch N     override the policy section's inference batch size
    --fast-math   select the approximate-tanh inference tier (docs/PERFORMANCE.md);
                  changes report bytes, so it is part of the cache key
    --out FILE    write the canonical-JSON report to FILE instead of stdout
    --cache       memoize cells through the result store (docs/CACHING.md)
    --cache-dir DIR  store location (implies --cache; default:
                     $MOCC_CACHE_DIR or target/mocc-cache/store)

OPTIONS (hunt):
    --budget N        candidate cells to evaluate (default: 24; each costs
                      two one-cell runs, policy and baseline)
    --baseline SCHEME registry scheme to score against (default: cubic)
    --out-dir DIR     where losing spec files land (default: target/mocc-hunt)
    --seed N          mutation RNG seed (default: 7; independent of the
                      spec's simulation seed)

OPTIONS (train):
    --zoo DIR      model zoo directory (default: $MOCC_ZOO_DIR or models)
    --resume DIR   resume from the checkpoints in DIR (and keep
                   checkpointing there)
    --out FILE     also copy the final model.json to FILE
    --max-iters N  stop after N total schedule iterations (the run can
                   be resumed later)

OPTIONS (cache gc):
    --older-than-days N  also drop entries untouched for more than N days

OPTIONS (serve):
    --socket PATH  accept connections on a Unix socket instead of stdin

OPTIONS (audit):
    --format FMT   report format: text (default) or json (canonical,
                   byte-stable — see docs/AUDIT.md)
    --rule ID      report only findings of one rule
    ROOT           workspace root to scan (default: ascend from the
                   working directory to the [workspace] Cargo.toml)
";

/// Environment variable naming the default store directory.
const CACHE_DIR_ENV: &str = "MOCC_CACHE_DIR";
/// Fallback store directory (relative to the working directory).
const DEFAULT_CACHE_DIR: &str = "target/mocc-cache/store";
/// Environment variable naming the default model zoo directory.
const ZOO_DIR_ENV: &str = "MOCC_ZOO_DIR";
/// Fallback zoo directory (relative to the working directory).
const DEFAULT_ZOO_DIR: &str = "models";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args[1..]),
        Some("hunt") => cmd_hunt(&args[1..]),
        Some("train") => cmd_train(&args[1..]),
        Some("validate") => cmd_validate(&args[1..]),
        Some("list-schemes") => cmd_list_schemes(&args[1..]),
        Some("cache") => cmd_cache(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("audit") => cmd_audit(&args[1..]),
        Some("--help" | "-h" | "help") | None => {
            print!("{USAGE}");
            Ok(())
        }
        Some(other) => Err(format!("unknown subcommand {other:?}\n\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

/// Parses `--flag N` style options out of `args`, returning the
/// remaining positional arguments.
fn split_options(args: &[String]) -> Result<(Vec<&str>, Options), String> {
    let mut positional = Vec::new();
    let mut opts = Options::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--threads" => opts.threads = Some(parse_count(&mut it, "--threads")?),
            "--batch" => opts.batch = Some(parse_count(&mut it, "--batch")?),
            "--fast-math" => opts.fast_math = true,
            "--out" => {
                opts.out = Some(
                    it.next()
                        .ok_or_else(|| "--out needs a file path".to_string())?
                        .clone(),
                )
            }
            "--cache" => opts.cache = true,
            "--cache-dir" => {
                opts.cache = true;
                opts.cache_dir = Some(
                    it.next()
                        .ok_or_else(|| "--cache-dir needs a directory path".to_string())?
                        .clone(),
                )
            }
            "--older-than-days" => {
                opts.older_than_days = Some(parse_count(&mut it, "--older-than-days")? as u64)
            }
            "--zoo" => {
                opts.zoo = Some(
                    it.next()
                        .ok_or_else(|| "--zoo needs a directory path".to_string())?
                        .clone(),
                )
            }
            "--resume" => {
                opts.resume = Some(
                    it.next()
                        .ok_or_else(|| "--resume needs a checkpoint directory".to_string())?
                        .clone(),
                )
            }
            "--max-iters" => opts.max_iters = Some(parse_count(&mut it, "--max-iters")?),
            "--budget" => opts.budget = Some(parse_count(&mut it, "--budget")?),
            "--seed" => {
                let raw = it
                    .next()
                    .ok_or_else(|| "--seed needs an unsigned integer".to_string())?;
                opts.seed = Some(
                    raw.parse::<u64>()
                        .map_err(|_| format!("--seed {raw:?} is not an unsigned integer"))?,
                )
            }
            "--baseline" => {
                opts.baseline = Some(
                    it.next()
                        .ok_or_else(|| "--baseline needs a scheme label".to_string())?
                        .clone(),
                )
            }
            "--out-dir" => {
                opts.out_dir = Some(
                    it.next()
                        .ok_or_else(|| "--out-dir needs a directory path".to_string())?
                        .clone(),
                )
            }
            "--socket" => {
                opts.socket = Some(
                    it.next()
                        .ok_or_else(|| "--socket needs a path".to_string())?
                        .clone(),
                )
            }
            "--format" => {
                opts.format = Some(
                    it.next()
                        .ok_or_else(|| "--format needs `json` or `text`".to_string())?
                        .clone(),
                )
            }
            "--rule" => {
                opts.rule = Some(
                    it.next()
                        .ok_or_else(|| "--rule needs a rule id".to_string())?
                        .clone(),
                )
            }
            other if other.starts_with("--") => {
                return Err(format!("unknown option {other:?}\n\n{USAGE}"))
            }
            other => positional.push(other),
        }
    }
    Ok((positional, opts))
}

#[derive(Default)]
struct Options {
    threads: Option<usize>,
    batch: Option<usize>,
    fast_math: bool,
    out: Option<String>,
    cache: bool,
    cache_dir: Option<String>,
    older_than_days: Option<u64>,
    socket: Option<String>,
    zoo: Option<String>,
    resume: Option<String>,
    max_iters: Option<usize>,
    budget: Option<usize>,
    baseline: Option<String>,
    out_dir: Option<String>,
    seed: Option<u64>,
    format: Option<String>,
    rule: Option<String>,
}

impl Options {
    /// The store root: `--cache-dir`, else `$MOCC_CACHE_DIR`, else the
    /// in-repo default.
    fn store_root(&self) -> PathBuf {
        match &self.cache_dir {
            Some(dir) => PathBuf::from(dir),
            // audit:allow(env-discipline): strict-parse helper — the one reader of MOCC_CACHE_DIR in the CLI
            None => std::env::var(CACHE_DIR_ENV)
                .map(PathBuf::from)
                .unwrap_or_else(|_| PathBuf::from(DEFAULT_CACHE_DIR)),
        }
    }

    fn open_store(&self) -> Result<ResultStore, String> {
        let root = self.store_root();
        let store = ResultStore::open(&root).map_err(|e| format!("{}: {e}", root.display()))?;
        if store.repaired_tail() {
            eprintln!(
                "[mocc] cache: repaired a half-written ledger line in {}",
                root.display()
            );
        }
        Ok(store)
    }

    fn runner(&self) -> SweepRunner {
        match self.threads {
            Some(n) => SweepRunner::with_threads(n),
            None => SweepRunner::auto(),
        }
    }

    /// The model zoo root: `--zoo`, else `$MOCC_ZOO_DIR`, else the
    /// in-repo default.
    fn zoo_root(&self) -> PathBuf {
        match &self.zoo {
            Some(dir) => PathBuf::from(dir),
            // audit:allow(env-discipline): strict-parse helper — the one reader of MOCC_ZOO_DIR
            None => std::env::var(ZOO_DIR_ENV)
                .map(PathBuf::from)
                .unwrap_or_else(|_| PathBuf::from(DEFAULT_ZOO_DIR)),
        }
    }
}

fn parse_count<'a>(it: &mut impl Iterator<Item = &'a String>, flag: &str) -> Result<usize, String> {
    let raw = it
        .next()
        .ok_or_else(|| format!("{flag} needs a positive integer"))?;
    raw.parse::<usize>()
        .ok()
        .filter(|n| *n >= 1)
        .ok_or_else(|| format!("{flag} {raw:?} is not a positive integer"))
}

/// Unix seconds — the CLI's timestamp chokepoint; libraries take
/// timestamps as arguments to stay deterministic. One of the two
/// named clock sites (`mocc audit` clock-discipline; the other is
/// `mocc_bench::timing`).
fn now_ts() -> u64 {
    // audit:allow(clock-discipline): the CLI timestamp chokepoint — timestamps flow into the cache ledger, never into results
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

/// The `--older-than-days N` cutoff for `mocc cache gc`: entries last
/// touched *strictly before* `now − N·86 400` are dropped (a ledger
/// timestamp exactly at the cutoff survives — see the store's gc
/// contract). `None` disables the age filter. Computed once here from
/// the CLI's single clock read ([`now_ts`]); the store itself never
/// reads a clock. Both steps saturate so absurd `N` values clamp the
/// cutoff to the epoch instead of wrapping around.
fn gc_cutoff(now: u64, older_than_days: Option<u64>) -> Option<u64> {
    older_than_days.map(|days| now.saturating_sub(days.saturating_mul(86_400)))
}

fn load_spec(path: &str) -> Result<ExperimentSpec, String> {
    ExperimentSpec::load(Path::new(path)).map_err(|e| format!("{path}: {e}"))
}

/// Best-effort peek at a spec document's `kind` tag, for dispatching
/// between experiment and train specs. Unreadable or malformed files
/// return `None` and fall through to the full parser, which owns the
/// real error message.
fn spec_kind(path: &str) -> Option<String> {
    let text = std::fs::read_to_string(path).ok()?;
    let Value::Obj(obj) = serde_json::from_str(&text).ok()? else {
        return None;
    };
    match obj.get("kind") {
        Some(Value::Str(kind)) => Some(kind.clone()),
        _ => None,
    }
}

fn cmd_run(args: &[String]) -> Result<(), String> {
    let (positional, opts) = split_options(args)?;
    if opts.socket.is_some() || opts.older_than_days.is_some() || opts.budget.is_some() {
        return Err(
            "`mocc run` does not take --socket, --older-than-days, or --budget".to_string(),
        );
    }
    let &[path] = positional.as_slice() else {
        return Err(format!("`mocc run` takes exactly one spec file\n\n{USAGE}"));
    };
    if spec_kind(path).as_deref() == Some("train") {
        return Err(format!(
            "{path} is a training spec — run it with `mocc train {path}`"
        ));
    }
    let mut exp = load_spec(path)?;
    if let Some(batch) = opts.batch {
        match &mut exp.policy {
            Some(policy) => policy.batch = batch,
            None => {
                return Err(format!(
                    "{path}: --batch overrides the spec's policy section, \
                     but this spec has none (no `mocc` schemes)"
                ))
            }
        }
    }
    if opts.fast_math {
        match &mut exp.policy {
            Some(policy) => policy.fast_math = true,
            None => {
                return Err(format!(
                    "{path}: --fast-math selects the policy's inference tier, \
                     but this spec has no policy section (no `mocc` schemes)"
                ))
            }
        }
    }
    let runner = opts.runner();
    eprintln!(
        "[mocc] {}: {} cells over {} worker threads",
        exp.name,
        exp.cell_count(),
        runner.threads()
    );
    let json = if opts.cache {
        let store = opts.open_store()?;
        let (report, stats) = mocc_core::run_experiment_cached(&runner, &exp, &store, now_ts())
            .map_err(|e| format!("{path}: {e}"))?;
        eprintln!(
            "[mocc] cache: {} hits, {} misses ({})",
            stats.hits,
            stats.misses,
            store.root().display()
        );
        report.to_canonical_json()
    } else {
        mocc_core::run_experiment(&runner, &exp)
            .map_err(|e| format!("{path}: {e}"))?
            .to_canonical_json()
    };
    match &opts.out {
        Some(out) => std::fs::write(out, &json).map_err(|e| format!("{out}: {e}"))?,
        None => println!("{json}"),
    }
    Ok(())
}

/// Runs the coverage-guided adversarial search over one sweep spec:
/// mutate scenario axes under a seeded RNG, score the MOCC policy
/// against a baseline scheme per cell, and emit every losing regime
/// as a ready-to-run spec file.
fn cmd_hunt(args: &[String]) -> Result<(), String> {
    let (positional, opts) = split_options(args)?;
    if opts.batch.is_some() || opts.fast_math || opts.cache || opts.out.is_some() {
        return Err(
            "`mocc hunt` takes only --budget, --baseline, --out-dir, --seed, and --threads"
                .to_string(),
        );
    }
    let &[path] = positional.as_slice() else {
        return Err(format!(
            "`mocc hunt` takes exactly one spec file\n\n{USAGE}"
        ));
    };
    let exp = load_spec(path)?;
    let mut hunt_opts = mocc_core::HuntOptions::default();
    if let Some(budget) = opts.budget {
        hunt_opts.budget = budget;
    }
    if let Some(baseline) = &opts.baseline {
        hunt_opts.baseline = baseline.clone();
    }
    if let Some(dir) = &opts.out_dir {
        hunt_opts.out_dir = PathBuf::from(dir);
    }
    if let Some(seed) = opts.seed {
        hunt_opts.seed = seed;
    }
    let runner = opts.runner();
    eprintln!(
        "[mocc] hunt {}: budget {} vs baseline {:?}, seed {}, {} worker threads",
        exp.name,
        hunt_opts.budget,
        hunt_opts.baseline,
        hunt_opts.seed,
        runner.threads()
    );
    let outcome = mocc_core::hunt(&runner, &exp, &hunt_opts).map_err(|e| format!("{path}: {e}"))?;
    for f in &outcome.findings {
        println!(
            "{}  margin {:+.4} (mocc {:.4} vs {} {:.4})",
            f.path.display(),
            f.margin,
            f.mocc_utility,
            hunt_opts.baseline,
            f.baseline_utility
        );
    }
    eprintln!(
        "[mocc] hunt {}: {} candidates evaluated, {} regimes covered, {} losing specs in {}",
        exp.name,
        outcome.evaluated,
        outcome.coverage,
        outcome.findings.len(),
        hunt_opts.out_dir.display()
    );
    Ok(())
}

/// Runs (or resumes) one training spec through the checkpointed
/// trainer; a completed run lands in the zoo with provenance.
fn cmd_train(args: &[String]) -> Result<(), String> {
    let (positional, opts) = split_options(args)?;
    if opts.threads.is_some()
        || opts.batch.is_some()
        || opts.fast_math
        || opts.cache
        || opts.socket.is_some()
        || opts.older_than_days.is_some()
    {
        return Err("`mocc train` takes only --zoo, --resume, --out, and --max-iters".to_string());
    }
    let &[path] = positional.as_slice() else {
        return Err(format!(
            "`mocc train` takes exactly one spec file\n\n{USAGE}"
        ));
    };
    let spec = TrainSpec::load(Path::new(path)).map_err(|e| format!("{path}: {e}"))?;
    spec.validate().map_err(|e| format!("{path}: {e}"))?;

    let zoo = opts.zoo_root();
    let checkpoint_dir = match &opts.resume {
        Some(dir) => PathBuf::from(dir),
        None => zoo.join(&spec.name).join("checkpoints"),
    };
    let train_opts = TrainOptions {
        checkpoint_dir: Some(checkpoint_dir.clone()),
        resume_from: opts.resume.as_ref().map(PathBuf::from),
        max_iters: opts.max_iters,
        // Wall-time logging only; training itself never reads a clock.
        clock: Some(mocc_bench::timing::monotonic_secs),
    };
    let total = spec.schedule_len().map_err(|e| format!("{path}: {e}"))?;
    eprintln!(
        "[mocc] train {}: {} scheduled iterations, spec digest {}",
        spec.name,
        total,
        &spec.digest()[..12]
    );

    let run = mocc_core::train_spec(&spec, &train_opts).map_err(|e| format!("{path}: {e}"))?;
    if !run.completed {
        eprintln!(
            "[mocc] train {}: stopped at iteration {} of {}; resume with \
             `mocc train {path} --zoo {} --resume {}`",
            spec.name,
            run.outcome.iterations,
            total,
            zoo.display(),
            checkpoint_dir.display()
        );
        return Ok(());
    }
    let model_path = mocc_core::save_trained(&zoo, &spec, &run.agent, run.outcome.iterations)
        .map_err(|e| e.to_string())?;
    eprintln!(
        "[mocc] train {}: {} iterations in {:.1}s -> {}",
        spec.name,
        run.outcome.iterations,
        run.outcome.wall_secs,
        model_path.display()
    );
    if let Some(out) = &opts.out {
        std::fs::copy(&model_path, out).map_err(|e| format!("{out}: {e}"))?;
        eprintln!("[mocc] train {}: copied model to {out}", spec.name);
    }
    Ok(())
}

fn cmd_validate(args: &[String]) -> Result<(), String> {
    let (positional, opts) = split_options(args)?;
    if positional.is_empty() {
        return Err(format!("`mocc validate` takes spec files\n\n{USAGE}"));
    }
    if opts.threads.is_some()
        || opts.batch.is_some()
        || opts.out.is_some()
        || opts.cache
        || opts.fast_math
        || opts.zoo.is_some()
        || opts.resume.is_some()
        || opts.max_iters.is_some()
        || opts.budget.is_some()
        || opts.baseline.is_some()
        || opts.out_dir.is_some()
        || opts.seed.is_some()
    {
        return Err("`mocc validate` takes no options".to_string());
    }
    let registry = SchemeRegistry::builtin();
    let mut failures = 0usize;
    for path in &positional {
        if spec_kind(path).as_deref() == Some("train") {
            match TrainSpec::load(Path::new(path))
                .and_then(|spec| spec.validate().map(|()| spec))
                .map_err(|e| format!("{path}: {e}"))
            {
                Ok(spec) => {
                    println!(
                        "{path}: ok (train, {} iterations, model {})",
                        spec.schedule_len().expect("validated"),
                        spec.name
                    );
                }
                Err(msg) => {
                    eprintln!("{msg}");
                    failures += 1;
                }
            }
            continue;
        }
        match load_spec(path).and_then(|exp| {
            exp.validate_in(&registry)
                .map_err(|e| format!("{path}: {e}"))?;
            Ok(exp)
        }) {
            Ok(exp) => {
                let kind = match exp.needs_policy() {
                    true => "policy-driven",
                    false => "baseline-only",
                };
                println!("{path}: ok ({} cells, {kind})", exp.cell_count());
            }
            Err(msg) => {
                eprintln!("{msg}");
                failures += 1;
            }
        }
    }
    if failures > 0 {
        return Err(format!("{failures} of {} specs invalid", positional.len()));
    }
    Ok(())
}

fn cmd_list_schemes(args: &[String]) -> Result<(), String> {
    if !args.is_empty() {
        return Err("`mocc list-schemes` takes no arguments".to_string());
    }
    let registry = SchemeRegistry::builtin();
    println!("registry schemes:");
    for (name, summary) in registry.entries() {
        println!("  {name:<14} {summary}");
    }
    println!("\nmocc schemes (need a `policy` section in the spec):");
    println!("  mocc           the policy under the spec's default preference");
    println!("  mocc:thr       throughput preference <0.8, 0.1, 0.1>");
    println!("  mocc:lat       latency preference <0.1, 0.8, 0.1>");
    println!("  mocc:bal       balanced preference <1/3, 1/3, 1/3>");
    println!("  mocc:w1,w2,w3  explicit (thr, lat, loss) weights, normalized");
    println!(
        "\ncompetition mixes: duel:<a>+<b>[+…] | stair:<scheme>:<n>x<phase_s> \
         | incast:<scheme>:<n>x<stagger_s>"
    );
    Ok(())
}

fn cmd_cache(args: &[String]) -> Result<(), String> {
    let (positional, opts) = split_options(args)?;
    let &[action] = positional.as_slice() else {
        return Err(format!(
            "`mocc cache` takes one action: stats, verify, or gc\n\n{USAGE}"
        ));
    };
    let store = opts.open_store()?;
    match action {
        "stats" => {
            let s = store.stats().map_err(|e| e.to_string())?;
            println!("store:        {}", store.root().display());
            println!("objects:      {} ({} bytes)", s.objects, s.object_bytes);
            println!("keys:         {}", s.keys);
            println!(
                "ledger:       {} puts, {} hits, {} misses",
                s.puts, s.hits, s.misses
            );
            if s.bad_ledger_lines > 0 || s.truncated_ledger_tail {
                println!(
                    "damage:       {} bad lines, truncated tail: {}",
                    s.bad_ledger_lines, s.truncated_ledger_tail
                );
            }
            Ok(())
        }
        "verify" => {
            let report = store.verify().map_err(|e| e.to_string())?;
            for issue in &report.issues {
                eprintln!("issue: {issue}");
            }
            if report.is_clean() {
                println!(
                    "{}: clean ({} objects verified)",
                    store.root().display(),
                    report.objects_checked
                );
                Ok(())
            } else {
                Err(format!(
                    "{}: {} issues found ({} objects verified); corrupt entries \
                     degrade to recomputation — run `mocc cache gc` to drop them",
                    store.root().display(),
                    report.issues.len(),
                    report.objects_checked
                ))
            }
        }
        "gc" => {
            let before = gc_cutoff(now_ts(), opts.older_than_days);
            let report = store.gc(before).map_err(|e| e.to_string())?;
            println!(
                "{}: kept {} objects, removed {}, dropped {} ledger lines",
                store.root().display(),
                report.kept,
                report.removed_objects,
                report.removed_ledger_lines
            );
            Ok(())
        }
        other => Err(format!(
            "unknown cache action {other:?}: expected stats, verify, or gc"
        )),
    }
}

/// Runs the workspace static-analysis pass (docs/AUDIT.md). Exits
/// nonzero on any finding, so CI can gate on it directly.
fn cmd_audit(args: &[String]) -> Result<(), String> {
    let (positional, opts) = split_options(args)?;
    if opts.threads.is_some()
        || opts.batch.is_some()
        || opts.fast_math
        || opts.cache
        || opts.out.is_some()
        || opts.socket.is_some()
    {
        return Err("`mocc audit` takes only --format, --rule, and an optional root".to_string());
    }
    let root = match positional.as_slice() {
        [] => {
            let cwd = std::env::current_dir().map_err(|e| e.to_string())?;
            mocc_audit::workspace_root_from(&cwd).ok_or_else(|| {
                "no [workspace] Cargo.toml above the working directory; pass the root explicitly"
                    .to_string()
            })?
        }
        [dir] => PathBuf::from(dir),
        _ => return Err(format!("`mocc audit` takes at most one root\n\n{USAGE}")),
    };
    let mut report = mocc_audit::audit_workspace(&root)
        .map_err(|e| format!("auditing {}: {e}", root.display()))?;
    if let Some(rule) = &opts.rule {
        if mocc_audit::rules::rule_by_id(rule).is_none() {
            let known: Vec<&str> = mocc_audit::rules::RULES.iter().map(|r| r.id).collect();
            return Err(format!(
                "unknown rule {rule:?}; known rules: {}",
                known.join(", ")
            ));
        }
        report.retain_rule(rule);
    }
    match opts.format.as_deref() {
        None | Some("text") => print!("{}", report.to_text()),
        Some("json") => print!("{}", report.to_json()),
        Some(other) => return Err(format!("--format takes `json` or `text`, not {other:?}")),
    }
    if report.is_clean() {
        Ok(())
    } else {
        Err(format!(
            "audit found {} violation(s) (rules: docs/AUDIT.md)",
            report.findings.len()
        ))
    }
}

// ---- mocc serve -------------------------------------------------------

/// One store-backed daemon serving spec requests over a line-delimited
/// JSON protocol. Each request is one JSON object per line:
///
/// ```text
/// {"op":"ping"}
/// {"op":"stats"}
/// {"op":"run","spec":{...ExperimentSpec...}}
/// {"op":"run","path":"examples/specs/sweep_cubic.json"}
/// {"op":"shutdown"}
/// ```
///
/// and each response one JSON object per line: `{"ok":true,...}` with
/// the canonical report under `"report"` plus `"hits"`/`"misses"`, or
/// `{"ok":false,"error":"..."}`. Malformed requests answer an error
/// and keep the session alive; `shutdown` ends the daemon.
fn cmd_serve(args: &[String]) -> Result<(), String> {
    let (positional, opts) = split_options(args)?;
    if !positional.is_empty() {
        return Err(format!(
            "`mocc serve` takes no positional arguments\n\n{USAGE}"
        ));
    }
    let store = opts.open_store()?;
    let runner = opts.runner();
    match &opts.socket {
        None => {
            eprintln!(
                "[mocc] serve: reading ops from stdin, store {}",
                store.root().display()
            );
            let stdin = std::io::stdin();
            let stdout = std::io::stdout();
            serve_session(stdin.lock(), stdout.lock(), &runner, &store)?;
            Ok(())
        }
        Some(path) => {
            use std::os::unix::net::UnixListener;
            let _ = std::fs::remove_file(path);
            let listener = UnixListener::bind(path).map_err(|e| format!("{path}: {e}"))?;
            eprintln!(
                "[mocc] serve: listening on {path}, store {}",
                store.root().display()
            );
            for conn in listener.incoming() {
                let conn = conn.map_err(|e| e.to_string())?;
                let reader = std::io::BufReader::new(conn.try_clone().map_err(|e| e.to_string())?);
                let shutdown = serve_session(reader, conn, &runner, &store)?;
                if shutdown {
                    break;
                }
            }
            let _ = std::fs::remove_file(path);
            Ok(())
        }
    }
}

/// Upper bound on one request line. Longer lines are discarded in
/// bounded chunks and answered with a structured error, so a client
/// cannot make the daemon buffer an arbitrarily large request.
const MAX_REQUEST_BYTES: usize = 1 << 20;

/// Serves one client session; returns true when the client asked the
/// daemon to shut down (not merely disconnected).
///
/// Per-request faults — malformed JSON, invalid UTF-8, an oversized
/// line, or a panic inside op dispatch — answer `{"ok":false,...}` and
/// keep the session alive; only a transport-level read/write error
/// ends it.
fn serve_session(
    mut reader: impl BufRead,
    mut writer: impl Write,
    runner: &SweepRunner,
    store: &ResultStore,
) -> Result<bool, String> {
    let mut buf = Vec::new();
    loop {
        buf.clear();
        let n = reader
            .by_ref()
            .take(MAX_REQUEST_BYTES as u64 + 1)
            .read_until(b'\n', &mut buf)
            .map_err(|e| e.to_string())?;
        if n == 0 {
            return Ok(false); // Client disconnected.
        }
        let (response, shutdown) = if buf.len() > MAX_REQUEST_BYTES && !buf.ends_with(b"\n") {
            drain_line(&mut reader)?;
            (
                error_response(&format!("request line exceeds {MAX_REQUEST_BYTES} bytes")),
                false,
            )
        } else {
            // Lossy decoding: invalid UTF-8 becomes a JSON parse error
            // on the replacement characters, not a dead session.
            let line = String::from_utf8_lossy(&buf);
            if line.trim().is_empty() {
                continue;
            }
            serve_line(&line, runner, store)
        };
        writeln!(writer, "{response}").map_err(|e| e.to_string())?;
        writer.flush().map_err(|e| e.to_string())?;
        if shutdown {
            return Ok(true);
        }
    }
}

/// Discards the rest of the current input line (the request already
/// exceeded [`MAX_REQUEST_BYTES`]), consuming the reader's buffer in
/// place so memory stays bounded. EOF also ends the line.
fn drain_line(reader: &mut impl BufRead) -> Result<(), String> {
    loop {
        let available = reader.fill_buf().map_err(|e| e.to_string())?;
        if available.is_empty() {
            return Ok(());
        }
        match available.iter().position(|&b| b == b'\n') {
            Some(i) => {
                reader.consume(i + 1);
                return Ok(());
            }
            None => {
                let n = available.len();
                reader.consume(n);
            }
        }
    }
}

/// [`serve_one`] behind a panic guard: a panic while dispatching one
/// request becomes a structured error response instead of unwinding
/// through the serve loop and killing the daemon.
fn serve_line(line: &str, runner: &SweepRunner, store: &ResultStore) -> (String, bool) {
    use std::panic::{catch_unwind, AssertUnwindSafe};
    match catch_unwind(AssertUnwindSafe(|| serve_one(line, runner, store))) {
        Ok(result) => result,
        Err(payload) => (
            // `&*payload`: deref the box so we downcast the payload,
            // not the `Box<dyn Any>` itself.
            error_response(&format!("internal error: {}", panic_message(&*payload))),
            false,
        ),
    }
}

/// Best-effort text of a caught panic payload (`panic!` carries a
/// `&str` or `String`; anything else is opaque).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s
    } else {
        "unknown panic"
    }
}

fn obj(fields: Vec<(&str, Value)>) -> Value {
    let mut map = BTreeMap::new();
    for (k, v) in fields {
        map.insert(k.to_string(), v);
    }
    Value::Obj(map)
}

fn error_response(msg: &str) -> String {
    serde_json::to_string(&obj(vec![
        ("error", Value::Str(msg.to_string())),
        ("ok", Value::Bool(false)),
    ]))
    .expect("response serializes")
}

/// Handles one protocol line; returns `(response line, shutdown?)`.
fn serve_one(line: &str, runner: &SweepRunner, store: &ResultStore) -> (String, bool) {
    let request: Value = match serde_json::from_str(line) {
        Ok(v) => v,
        Err(e) => return (error_response(&format!("bad request JSON: {e}")), false),
    };
    let Value::Obj(request) = request else {
        return (error_response("request must be a JSON object"), false);
    };
    let op = match request.get("op") {
        Some(Value::Str(op)) => op.as_str(),
        _ => return (error_response("request needs a string `op` field"), false),
    };
    match op {
        "ping" => (
            serde_json::to_string(&obj(vec![
                ("ok", Value::Bool(true)),
                ("op", Value::Str("ping".to_string())),
            ]))
            .expect("response serializes"),
            false,
        ),
        "shutdown" => (
            serde_json::to_string(&obj(vec![
                ("ok", Value::Bool(true)),
                ("op", Value::Str("shutdown".to_string())),
            ]))
            .expect("response serializes"),
            true,
        ),
        "stats" => match store.stats() {
            Err(e) => (error_response(&e.to_string()), false),
            Ok(s) => (
                serde_json::to_string(&obj(vec![
                    ("hits", s.hits.to_value()),
                    ("keys", s.keys.to_value()),
                    ("misses", s.misses.to_value()),
                    ("objects", s.objects.to_value()),
                    ("ok", Value::Bool(true)),
                    ("puts", s.puts.to_value()),
                ]))
                .expect("response serializes"),
                false,
            ),
        },
        "run" => {
            let exp = match (request.get("spec"), request.get("path")) {
                (Some(spec), None) => {
                    ExperimentSpec::from_value(spec).map_err(|e| format!("bad spec: {e}"))
                }
                (None, Some(Value::Str(path))) => {
                    ExperimentSpec::load(Path::new(path)).map_err(|e| format!("{path}: {e}"))
                }
                _ => Err("run needs exactly one of `spec` (inline) or `path`".to_string()),
            };
            let result = exp.and_then(|exp| {
                mocc_core::run_experiment_cached(runner, &exp, store, now_ts())
                    .map_err(|e| e.to_string())
            });
            match result {
                Err(e) => (error_response(&e), false),
                Ok((report, stats)) => {
                    let report_value: Value = serde_json::from_str(&report.to_canonical_json())
                        .expect("canonical report parses");
                    (
                        serde_json::to_string(&obj(vec![
                            ("hits", stats.hits.to_value()),
                            ("misses", stats.misses.to_value()),
                            ("ok", Value::Bool(true)),
                            ("report", report_value),
                        ]))
                        .expect("response serializes"),
                        false,
                    )
                }
            }
        }
        other => (error_response(&format!("unknown op {other:?}")), false),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;

    #[test]
    fn gc_cutoff_is_now_minus_whole_days() {
        assert_eq!(gc_cutoff(1_000_000, None), None);
        assert_eq!(gc_cutoff(1_000_000, Some(0)), Some(1_000_000));
        assert_eq!(gc_cutoff(1_000_000, Some(1)), Some(1_000_000 - 86_400));
        assert_eq!(gc_cutoff(1_000_000, Some(7)), Some(1_000_000 - 7 * 86_400));
    }

    #[test]
    fn gc_cutoff_saturates_instead_of_wrapping() {
        // More days than the clock holds: clamp to the epoch; an
        // entry at ts 0 still survives (`0 < 0` is false).
        assert_eq!(gc_cutoff(5, Some(1)), Some(0));
        assert_eq!(gc_cutoff(u64::MAX, Some(u64::MAX)), Some(0));
    }

    #[test]
    fn drain_line_stops_at_the_newline() {
        let mut reader = std::io::BufReader::new(&b"tail of oversized line\nnext"[..]);
        drain_line(&mut reader).unwrap();
        let mut rest = String::new();
        reader.read_to_string(&mut rest).unwrap();
        assert_eq!(rest, "next");
    }

    #[test]
    fn drain_line_accepts_eof_as_line_end() {
        let mut reader = std::io::BufReader::new(&b"no newline at all"[..]);
        drain_line(&mut reader).unwrap();
        let mut rest = String::new();
        reader.read_to_string(&mut rest).unwrap();
        assert_eq!(rest, "");
    }

    #[test]
    fn panic_message_reads_str_and_string_payloads() {
        use std::panic::{catch_unwind, AssertUnwindSafe};
        let p = catch_unwind(AssertUnwindSafe(|| panic!("plain str"))).unwrap_err();
        assert_eq!(panic_message(&*p), "plain str");
        let p = catch_unwind(AssertUnwindSafe(|| panic!("with {}", "args"))).unwrap_err();
        assert_eq!(panic_message(&*p), "with args");
    }
}
