//! `mocc` — the spec-file CLI: validate and run declarative
//! experiments end to end, no recompilation.
//!
//! ```text
//! mocc run <spec.json> [--threads N] [--batch N] [--out FILE]
//! mocc validate <spec.json>...
//! mocc list-schemes
//! ```
//!
//! `run` loads an [`ExperimentSpec`] document (see `docs/SPECS.md`),
//! validates it against the scheme registry, executes it — including
//! `mocc` schemes, whose policy the spec's `policy` section pins
//! reproducibly — and writes the canonical-JSON report to stdout (or
//! `--out`). The report is byte-identical for any `--threads` value.
//!
//! `validate` checks documents without running anything; every
//! problem is a typed [`SpecError`] naming the offending label or
//! field. `list-schemes` prints the scheme vocabulary and the label
//! grammar.

use mocc_eval::{ExperimentSpec, SchemeRegistry, SweepRunner};
use std::path::Path;
use std::process::ExitCode;

const USAGE: &str = "\
mocc — run declarative MOCC experiment specs (docs/SPECS.md)

USAGE:
    mocc run <spec.json> [--threads N] [--batch N] [--out FILE]
    mocc validate <spec.json>...
    mocc list-schemes

OPTIONS (run):
    --threads N   worker threads (default: MOCC_SWEEP_THREADS or all cores)
    --batch N     override the policy section's inference batch size
    --out FILE    write the canonical-JSON report to FILE instead of stdout
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args[1..]),
        Some("validate") => cmd_validate(&args[1..]),
        Some("list-schemes") => cmd_list_schemes(&args[1..]),
        Some("--help" | "-h" | "help") | None => {
            print!("{USAGE}");
            Ok(())
        }
        Some(other) => Err(format!("unknown subcommand {other:?}\n\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

/// Parses `--flag N` style options out of `args`, returning the
/// remaining positional arguments.
fn split_options(args: &[String]) -> Result<(Vec<&str>, Options), String> {
    let mut positional = Vec::new();
    let mut opts = Options::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--threads" => opts.threads = Some(parse_count(&mut it, "--threads")?),
            "--batch" => opts.batch = Some(parse_count(&mut it, "--batch")?),
            "--out" => {
                opts.out = Some(
                    it.next()
                        .ok_or_else(|| "--out needs a file path".to_string())?
                        .clone(),
                )
            }
            other if other.starts_with("--") => {
                return Err(format!("unknown option {other:?}\n\n{USAGE}"))
            }
            other => positional.push(other),
        }
    }
    Ok((positional, opts))
}

#[derive(Default)]
struct Options {
    threads: Option<usize>,
    batch: Option<usize>,
    out: Option<String>,
}

fn parse_count<'a>(it: &mut impl Iterator<Item = &'a String>, flag: &str) -> Result<usize, String> {
    let raw = it
        .next()
        .ok_or_else(|| format!("{flag} needs a positive integer"))?;
    raw.parse::<usize>()
        .ok()
        .filter(|n| *n >= 1)
        .ok_or_else(|| format!("{flag} {raw:?} is not a positive integer"))
}

fn load_spec(path: &str) -> Result<ExperimentSpec, String> {
    ExperimentSpec::load(Path::new(path)).map_err(|e| format!("{path}: {e}"))
}

fn cmd_run(args: &[String]) -> Result<(), String> {
    let (positional, opts) = split_options(args)?;
    let &[path] = positional.as_slice() else {
        return Err(format!("`mocc run` takes exactly one spec file\n\n{USAGE}"));
    };
    let mut exp = load_spec(path)?;
    if let Some(batch) = opts.batch {
        match &mut exp.policy {
            Some(policy) => policy.batch = batch,
            None => {
                return Err(format!(
                    "{path}: --batch overrides the spec's policy section, \
                     but this spec has none (no `mocc` schemes)"
                ))
            }
        }
    }
    let runner = match opts.threads {
        Some(n) => SweepRunner::with_threads(n),
        None => SweepRunner::auto(),
    };
    eprintln!(
        "[mocc] {}: {} cells over {} worker threads",
        exp.name,
        exp.cell_count(),
        runner.threads()
    );
    let report = mocc_core::run_experiment(&runner, &exp).map_err(|e| format!("{path}: {e}"))?;
    let json = report.to_canonical_json();
    match &opts.out {
        Some(out) => std::fs::write(out, &json).map_err(|e| format!("{out}: {e}"))?,
        None => println!("{json}"),
    }
    Ok(())
}

fn cmd_validate(args: &[String]) -> Result<(), String> {
    let (positional, opts) = split_options(args)?;
    if positional.is_empty() {
        return Err(format!("`mocc validate` takes spec files\n\n{USAGE}"));
    }
    if opts.threads.is_some() || opts.batch.is_some() || opts.out.is_some() {
        return Err("`mocc validate` takes no options".to_string());
    }
    let registry = SchemeRegistry::builtin();
    let mut failures = 0usize;
    for path in &positional {
        match load_spec(path).and_then(|exp| {
            exp.validate_in(&registry)
                .map_err(|e| format!("{path}: {e}"))?;
            Ok(exp)
        }) {
            Ok(exp) => {
                let kind = match exp.needs_policy() {
                    true => "policy-driven",
                    false => "baseline-only",
                };
                println!("{path}: ok ({} cells, {kind})", exp.cell_count());
            }
            Err(msg) => {
                eprintln!("{msg}");
                failures += 1;
            }
        }
    }
    if failures > 0 {
        return Err(format!("{failures} of {} specs invalid", positional.len()));
    }
    Ok(())
}

fn cmd_list_schemes(args: &[String]) -> Result<(), String> {
    if !args.is_empty() {
        return Err("`mocc list-schemes` takes no arguments".to_string());
    }
    let registry = SchemeRegistry::builtin();
    println!("registry schemes:");
    for (name, summary) in registry.entries() {
        println!("  {name:<14} {summary}");
    }
    println!("\nmocc schemes (need a `policy` section in the spec):");
    println!("  mocc           the policy under the spec's default preference");
    println!("  mocc:thr       throughput preference <0.8, 0.1, 0.1>");
    println!("  mocc:lat       latency preference <0.1, 0.8, 0.1>");
    println!("  mocc:bal       balanced preference <1/3, 1/3, 1/3>");
    println!("  mocc:w1,w2,w3  explicit (thr, lat, loss) weights, normalized");
    println!("\ncompetition mixes: duel:<a>+<b>[+…] | stair:<scheme>:<n>x<phase_s>");
    Ok(())
}
