//! Runs every figure binary in sequence, mirroring the full §6
//! evaluation. Equivalent to invoking `fig1` … `fig19` (plus the
//! `competition` matrix) by hand; models are trained once and cached,
//! so the first figure pays the training cost and the rest reuse it.

use std::process::Command;

const FIGURES: &[&str] = &[
    "fig1",
    "fig5",
    "fig6",
    "fig7",
    "fig8_10",
    "fig11_15",
    "competition",
    "fig16",
    "fig17",
    "fig18",
    "fig19",
];

fn main() {
    let exe_dir = std::env::current_exe()
        .expect("own path")
        .parent()
        .expect("bin dir")
        .to_path_buf();
    for fig in FIGURES {
        println!("\n################ {fig} ################");
        let status = Command::new(exe_dir.join(fig))
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {fig}: {e}"));
        if !status.success() {
            eprintln!("{fig} exited with {status}");
            std::process::exit(1);
        }
    }
    println!("\nall figures regenerated; see EXPERIMENTS.md for the paper-vs-measured record");
}
