//! Figures 11–15 — fairness and friendliness (§6.4).
//!
//! Fig. 11: three same-scheme flows staggered on a 12 Mbps dumbbell —
//!          per-epoch throughput shares.
//! Fig. 12: per-second Jain-index CDF per scheme (plus MOCC variants).
//! Fig. 13: pairwise competitions of MOCC variants (larger w_thr wins
//!          more bandwidth) and CUBIC vs Vegas for contrast.
//! Fig. 14: MOCC-vs-MOCC throughput ratio across RTTs for 6 weights.
//! Fig. 15: friendliness ratio (scheme / CUBIC) across RTTs.

use mocc_bench::{header, row, with_agent_mi, Scheme};
use mocc_core::Preference;
use mocc_netsim::metrics::{per_second_jain, percentile};
use mocc_netsim::{Scenario, Simulator};

fn run_flows(schemes: &[Scheme], sc: Scenario) -> Vec<mocc_netsim::FlowResult> {
    let sc = with_agent_mi(sc);
    let initial = 0.2 * sc.link.trace.max_rate();
    let ccs = schemes.iter().map(|s| s.make(initial)).collect();
    Simulator::new(sc, ccs).run().flows
}

fn main() {
    let full = mocc_bench::full_scale();
    let _ = mocc_bench::trained_mocc();
    let stagger = if full { 100.0 } else { 40.0 };
    let dur: u64 = if full { 400 } else { 160 };

    let fairness_schemes: Vec<(String, Scheme)> = vec![
        ("mocc".into(), Scheme::Mocc(Preference::throughput())),
        ("cubic".into(), Scheme::Baseline("cubic")),
        ("vegas".into(), Scheme::Baseline("vegas")),
        ("bbr".into(), Scheme::Baseline("bbr")),
        ("copa".into(), Scheme::Baseline("copa")),
        ("pcc-vivace".into(), Scheme::Baseline("pcc-vivace")),
        ("pcc-allegro".into(), Scheme::Baseline("pcc-allegro")),
        (
            "aurora".into(),
            Scheme::Aurora("thr", Preference::throughput()),
        ),
        ("orca".into(), Scheme::Baseline("orca")),
    ];

    println!("== Figure 11: 3 staggered same-scheme flows on 12 Mbps/20 ms RTT/1xBDP ==");
    println!("(mean Mbps of flows 1-3 during the final epoch, when all three share)");
    header(
        "scheme",
        &[
            "flow1".into(),
            "flow2".into(),
            "flow3".into(),
            "jain".into(),
        ],
        9,
    );
    let mut jain_sets: Vec<(String, Vec<f64>)> = Vec::new();
    for (name, scheme) in &fairness_schemes {
        // 1×BDP buffer: 12 Mbps × 20 ms / 12000 bits = 20 pkts — use a
        // small multiple to keep heuristics functional.
        let sc = Scenario::dumbbell(12e6, 10, 40, 3, stagger, dur);
        let flows = run_flows(&vec![scheme.clone(); 3], sc);
        let last_epoch = (2.0 * stagger) as usize..dur as usize;
        let means: Vec<f64> = flows
            .iter()
            .map(|f| {
                let xs: Vec<f64> = last_epoch
                    .clone()
                    .filter_map(|s| f.per_sec_mbits.get(s).copied())
                    .collect();
                if xs.is_empty() {
                    0.0
                } else {
                    xs.iter().sum::<f64>() / xs.len() as f64
                }
            })
            .collect();
        let jain = per_second_jain(&flows);
        let jain_med = percentile(&jain, 50.0);
        row(name, &[means[0], means[1], means[2], jain_med], 9, 2);
        jain_sets.push((name.clone(), jain));
    }

    println!("\n== Figure 12: per-second Jain index CDF ==");
    // Add the MOCC weight variants the paper includes.
    for (tag, pref) in [
        ("mocc-balance", Preference::balanced()),
        ("mocc-latency", Preference::latency()),
    ] {
        let sc = Scenario::dumbbell(12e6, 10, 40, 3, stagger, dur);
        let flows = run_flows(&vec![Scheme::Mocc(pref); 3], sc);
        jain_sets.push((tag.into(), per_second_jain(&flows)));
    }
    header(
        "scheme",
        &[
            "p10".into(),
            "p25".into(),
            "p50".into(),
            "p75".into(),
            "p90".into(),
        ],
        8,
    );
    for (name, jain) in &jain_sets {
        row(
            name,
            &[
                percentile(jain, 10.0),
                percentile(jain, 25.0),
                percentile(jain, 50.0),
                percentile(jain, 75.0),
                percentile(jain, 90.0),
            ],
            8,
            3,
        );
    }

    println!("\n== Figure 13: pairwise MOCC-variant competitions (20 Mbps/20 ms) ==");
    let pairs: Vec<(&str, Scheme, &str, Scheme)> = vec![
        (
            "mocc-thr",
            Scheme::Mocc(Preference::throughput()),
            "mocc-balance",
            Scheme::Mocc(Preference::balanced()),
        ),
        (
            "mocc-thr",
            Scheme::Mocc(Preference::throughput()),
            "mocc-latency",
            Scheme::Mocc(Preference::latency()),
        ),
        (
            "mocc-latency",
            Scheme::Mocc(Preference::latency()),
            "mocc-balance",
            Scheme::Mocc(Preference::balanced()),
        ),
        (
            "cubic",
            Scheme::Baseline("cubic"),
            "vegas",
            Scheme::Baseline("vegas"),
        ),
    ];
    header(
        "pair",
        &["A Mbps".into(), "B Mbps".into(), "A/B".into()],
        10,
    );
    for (na, a, nb, b) in pairs {
        let sc = Scenario::dumbbell(20e6, 10, 66, 2, 0.0, if full { 60 } else { 30 });
        let flows = run_flows(&[a, b], sc);
        let (ta, tb) = (flows[0].throughput_bps / 1e6, flows[1].throughput_bps / 1e6);
        row(
            &format!("{na} vs {nb}"),
            &[ta, tb, ta / tb.max(1e-9)],
            10,
            2,
        );
    }
    println!("(paper: larger w_thr is more aggressive; no variant starves the other)");

    println!("\n== Figure 14: MOCC-vs-MOCC throughput ratio across RTT (20 Mbps) ==");
    let weights = [
        ("w1<.8,.1,.1>", Preference::new(0.8, 0.1, 0.1)),
        ("w2<.6,.3,.1>", Preference::new(0.6, 0.3, 0.1)),
        ("w3<.5,.3,.2>", Preference::new(0.5, 0.3, 0.2)),
        ("w4<.2,.4,.4>", Preference::new(0.2, 0.4, 0.4)),
        ("w5<.1,.8,.1>", Preference::new(0.1, 0.8, 0.1)),
        ("w6<.1,.1,.8>", Preference::new(0.1, 0.1, 0.8)),
    ];
    let rtts = [10u64, 30, 50, 70, 90];
    header(
        "weights (vs w1)",
        &rtts.iter().map(|r| format!("{r}ms")).collect::<Vec<_>>(),
        8,
    );
    let mut ratios: Vec<f64> = Vec::new();
    for (name, w) in &weights[1..] {
        let vals: Vec<f64> = rtts
            .iter()
            .map(|&rtt| {
                let sc = Scenario::dumbbell(20e6, rtt / 2, 66, 2, 0.0, if full { 60 } else { 30 });
                let flows = run_flows(&[Scheme::Mocc(weights[0].1), Scheme::Mocc(*w)], sc);
                let r = flows[1].throughput_bps / flows[0].throughput_bps.max(1.0);
                ratios.push(r);
                r
            })
            .collect();
        row(name, &vals, 8, 2);
    }
    let (lo, hi) = (
        ratios.iter().cloned().fold(f64::MAX, f64::min),
        ratios.iter().cloned().fold(f64::MIN, f64::max),
    );
    println!("ratio range: {lo:.2}-{hi:.2} (paper: 0.43-2.04 — no starvation)");

    println!("\n== Figure 15: friendliness ratio vs one CUBIC flow across RTT ==");
    let rtts15 = [20u64, 40, 60, 80, 100, 120];
    let friend_schemes: Vec<(String, Scheme)> = vec![
        ("mocc-thr".into(), Scheme::Mocc(Preference::throughput())),
        ("mocc-balance".into(), Scheme::Mocc(Preference::balanced())),
        ("mocc-latency".into(), Scheme::Mocc(Preference::latency())),
        ("cubic".into(), Scheme::Baseline("cubic")),
        ("vegas".into(), Scheme::Baseline("vegas")),
        ("bbr".into(), Scheme::Baseline("bbr")),
        ("copa".into(), Scheme::Baseline("copa")),
        ("pcc-vivace".into(), Scheme::Baseline("pcc-vivace")),
        (
            "aurora".into(),
            Scheme::Aurora("thr", Preference::throughput()),
        ),
    ];
    header(
        "scheme / cubic",
        &rtts15.iter().map(|r| format!("{r}ms")).collect::<Vec<_>>(),
        8,
    );
    for (name, scheme) in &friend_schemes {
        let vals: Vec<f64> = rtts15
            .iter()
            .map(|&rtt| {
                let sc = Scenario::dumbbell(20e6, rtt / 2, 66, 2, 0.0, if full { 60 } else { 30 });
                let flows = run_flows(&[scheme.clone(), Scheme::Baseline("cubic")], sc);
                flows[0].throughput_bps / flows[1].throughput_bps.max(1.0)
            })
            .collect();
        row(name, &vals, 8, 2);
    }
    println!("(paper: MOCC-thr more aggressive, MOCC-balance/latency friendly, all comparable to other schemes)");
}
