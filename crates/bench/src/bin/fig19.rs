//! Figure 19 — training-speedup techniques.
//!
//! Compares wall-clock time of the three training regimes at equal
//! model quality targets: individual per-objective training, two-phase
//! neighborhood transfer, and transfer plus parallel rollout
//! collection. The paper reports 18× from transfer and a further 4×
//! from parallelism (Ray); our parallel factor is bounded by the
//! machine's cores.

use mocc_core::{TrainRegime, TrainSpec};

fn main() {
    let full = mocc_bench::full_scale();
    // A reduced-but-proportional budget: individual training gives each
    // of the ω landmarks the full bootstrap budget; transfer gives it
    // only to the 3 pivots plus a few traversal iterations per landmark.
    let base = TrainSpec {
        seed: 7,
        config: "default".to_string(),
        omega_step: Some(if full { 10 } else { 6 }), // ω = 36 or 10
        boot_iters: Some(if full { 100 } else { 40 }),
        traverse_iters: Some(2),
        traverse_cycles: Some(2),
        rollout_steps: Some(200),
        episode_mis: Some(200),
        // Serial rollouts by default; the transfer-parallel regime
        // raises this to 4 lockstep envs, which is the comparison.
        batch_envs: 1,
        ..TrainSpec::default()
    };
    let cfg = base.resolved_config().expect("fig19 base spec is valid");

    println!(
        "== Figure 19: training time by regime (omega = {}) ==",
        mocc_core::landmark_count(cfg.omega_step)
    );
    let mut results = Vec::new();
    for (name, regime) in [
        ("individual", TrainRegime::Individual),
        ("transfer", TrainRegime::Transfer),
        ("transfer+parallel", TrainRegime::TransferParallel),
    ] {
        let spec = TrainSpec {
            name: format!("fig19-{}", mocc_core::regime_label(regime)),
            regime,
            ..base.clone()
        };
        let opts = mocc_core::TrainOptions {
            clock: Some(mocc_bench::timing::monotonic_secs),
            ..mocc_core::TrainOptions::default()
        };
        let run = mocc_core::train_spec(&spec, &opts).expect("fig19 spec is valid");
        println!(
            "{name:<20} {:>7} iterations {:>9.1} s wall",
            run.outcome.iterations, run.outcome.wall_secs
        );
        results.push((name, run.outcome.wall_secs));
    }
    let individual = results[0].1;
    for (name, wall) in &results[1..] {
        println!(
            "speedup {name:<20} {:>6.1}x over individual",
            individual / wall.max(1e-9)
        );
    }
    println!("(paper: transfer 18x — 6d7.2h -> 8.4h — and parallel a further 4x -> 2.1h;");
    println!(" our parallel gain is rollout-collection only and bounded by core count)");
}
