//! Fixed-workload performance measurement for the CI perf gate.
//!
//! [`measure`] runs a frozen, seeded workload over the inference and
//! simulation hot paths and reduces it to a [`PerfReport`] of
//! throughput metrics. The *work* is pinned — `MOCC_BENCH_FIXED_ITERS`
//! fixes every repetition count — so two runs on the same machine do
//! the same arithmetic; wall-clock variation between machines is
//! absorbed by the tolerance band in [`check`].
//!
//! The report serializes to canonical JSON (sorted keys, three-decimal
//! floats) and is written to `BENCH_perf.json` by the `perf` binary —
//! the artifact that seeds the repository's performance trajectory.

use crate::timing::Stopwatch;
use mocc_core::{MoccAgent, MoccConfig, Preference};
use mocc_eval::{BaselineFactory, FlowLoad, SweepRunner, SweepSpec, TraceShape};
use mocc_netsim::{Scenario, Simulator};
use mocc_nn::{Activation, Mlp};
use mocc_rl::ppo::{Ppo, PpoConfig};
use mocc_rl::{collect_rollouts_batched_tier, BatchRolloutScratch, Env, Rollout};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::hint::black_box;

// The env name and its strict parser are criterion's: the bench smoke
// and the perf gate must always read MOCC_BENCH_FIXED_ITERS the same
// way.
pub use criterion::{parse_fixed_iters, FIXED_ITERS_ENV};

/// Environment variable for the regression tolerance used by `--check`
/// (a fraction in (0, 1]; a throughput metric may not fall below
/// `tolerance × baseline`).
pub const TOLERANCE_ENV: &str = "MOCC_PERF_TOLERANCE";

/// Observation dimensionality of the policy-shaped benchmark MLP
/// (3 preference + 10 history intervals × 3 statistics).
const OBS_DIM: usize = 33;

/// Parses a `MOCC_PERF_TOLERANCE` value (default 0.5 when unset): a
/// fraction in (0, 1].
pub fn parse_tolerance(raw: Option<&str>) -> Result<f64, String> {
    match raw {
        None => Ok(0.5),
        Some(v) => match v.parse::<f64>() {
            Ok(t) if t > 0.0 && t <= 1.0 => Ok(t),
            _ => Err(format!(
                "{TOLERANCE_ENV}={v:?} is not a fraction in (0, 1]; \
                 e.g. 0.5 fails metrics below 50% of baseline"
            )),
        },
    }
}

/// Reads `MOCC_BENCH_FIXED_ITERS` from the environment.
///
/// # Panics
///
/// Panics with a clear message on unparsable or zero values.
pub fn fixed_iters() -> Option<u64> {
    // audit:allow(env-discipline): strict-parse helper — the one reader of MOCC_BENCH_FIXED_ITERS
    let raw = std::env::var(FIXED_ITERS_ENV).ok();
    parse_fixed_iters(raw.as_deref()).unwrap_or_else(|msg| panic!("{msg}"))
}

/// Reads `MOCC_PERF_TOLERANCE` from the environment (default 0.5).
///
/// # Panics
///
/// Panics on values outside (0, 1].
pub fn tolerance() -> f64 {
    // audit:allow(env-discipline): strict-parse helper — the one reader of MOCC_PERF_TOLERANCE
    let raw = std::env::var(TOLERANCE_ENV).ok();
    parse_tolerance(raw.as_deref()).unwrap_or_else(|msg| panic!("{msg}"))
}

/// The measured hot-path metrics. Throughputs are "higher is better";
/// the `forward_ns_*` latencies are "lower is better".
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct PerfReport {
    /// The pinned repetition count (0 when adaptive defaults were used).
    pub fixed_iters: u64,
    /// Worker threads used for the sweep metrics.
    pub threads: u64,
    /// Nanoseconds per observation row, scalar forward (batch 1).
    pub forward_ns_b1: f64,
    /// Nanoseconds per observation row at batch 32.
    pub forward_ns_b32: f64,
    /// Nanoseconds per observation row at batch 256.
    pub forward_ns_b256: f64,
    /// Nanoseconds per row, fast-math tier (batch 1). See
    /// `mocc_nn::simd`: approximate tanh, vector backends.
    pub forward_fast_ns_b1: f64,
    /// Nanoseconds per row, fast-math tier at batch 256.
    pub forward_fast_ns_b256: f64,
    /// Discrete events processed per second on the fixed scenario.
    pub sim_steps_per_sec: f64,
    /// Cells per second on the frozen 64-cell reference sweep (cubic).
    pub sweep_cells_per_sec: f64,
    /// Cells per second for MOCC policy inference across a 16-cell
    /// matrix.
    pub mocc_cells_per_sec: f64,
    /// Environment transitions per second collecting training rollouts
    /// with per-env scalar forwards (the historical path).
    pub rollout_scalar_steps_per_sec: f64,
    /// Environment transitions per second collecting the same rollouts
    /// through the lockstep batched collector (16 envs, one batched
    /// actor + critic forward per monitor round).
    pub rollout_batched_steps_per_sec: f64,
}

impl PerfReport {
    /// Canonical JSON: sorted keys, compact, three-decimal floats.
    pub fn to_canonical_json(&self) -> String {
        serde_json::to_string(self).expect("report serialization is infallible")
    }

    /// Parses a report (baseline fixtures, archived runs).
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }
}

/// Rounds to three decimals — canonical precision for perf metrics.
fn round3(x: f64) -> f64 {
    (x * 1e3).round() / 1e3
}

/// The frozen 64-cell reference sweep (identical to the byte-identity
/// spec in `tests/golden_sweep.rs`; frozen — the perf baseline depends
/// on it).
pub fn reference_sweep() -> SweepSpec {
    SweepSpec {
        bandwidth_mbps: vec![2.0, 4.0],
        owd_ms: vec![10, 30],
        queue_pkts: vec![50, 200],
        loss: vec![0.0, 0.01],
        shapes: vec![TraceShape::Constant, TraceShape::Square { period_s: 2.0 }],
        loads: vec![FlowLoad::Steady(1), FlowLoad::Steady(2)],
        duration_s: 4,
        mss_bytes: 1500,
        seed: 11,
        agent_mi: false,
    }
}

/// The frozen 16-cell matrix used for the MOCC policy-inference metric.
pub fn mocc_sweep() -> SweepSpec {
    SweepSpec {
        bandwidth_mbps: vec![4.0, 8.0],
        owd_ms: vec![10, 30],
        queue_pkts: vec![100],
        loss: vec![0.0, 0.01],
        shapes: vec![TraceShape::Constant, TraceShape::Square { period_s: 2.0 }],
        loads: vec![FlowLoad::Steady(1)],
        duration_s: 4,
        mss_bytes: 1500,
        seed: 23,
        agent_mi: true,
    }
}

/// The policy-shaped MLP (33 → 64 → 32 → 1, the paper's trunk sizes)
/// used for the forward-latency metrics.
fn bench_mlp() -> Mlp {
    let mut rng = StdRng::seed_from_u64(97);
    Mlp::new(
        &[OBS_DIM, 64, 32, 1],
        Activation::Tanh,
        Activation::Linear,
        &mut rng,
    )
}

/// Deterministic observation rows for the forward benchmarks.
fn obs_rows(n: usize) -> Vec<f32> {
    let mut rng = StdRng::seed_from_u64(131);
    (0..n * OBS_DIM).map(|_| rng.gen_range(-1.0..1.0)).collect()
}

/// Times `f` over `reps` repetitions and returns the best (smallest)
/// wall-clock seconds of a single repetition.
fn best_of<F: FnMut()>(reps: u64, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Stopwatch::start();
        f();
        best = best.min(t.elapsed_secs());
    }
    best
}

fn forward_ns(batch: usize, iters: u64, tier: mocc_nn::ForwardTier) -> f64 {
    let mlp = bench_mlp();
    let data = obs_rows(batch);
    let mut scratch = mocc_nn::MlpScratch::default();
    let batch_m = mocc_nn::Matrix::from_vec(batch, OBS_DIM, data.clone());
    let mut out = mocc_nn::Matrix::zeros(0, 0);
    // Warm-up sizes the scratch buffers once, outside the timed region.
    mlp.forward_batch_into_tier(&batch_m, &mut out, &mut scratch, tier);
    let secs = best_of(3, || {
        for _ in 0..iters {
            if batch == 1 {
                black_box(mlp.forward_into_tier(black_box(&data), &mut scratch, tier));
            } else {
                mlp.forward_batch_into_tier(black_box(&batch_m), &mut out, &mut scratch, tier);
                black_box(out.data.last());
            }
        }
    });
    secs * 1e9 / (iters as f64 * batch as f64)
}

fn sim_steps_per_sec(reps: u64) -> f64 {
    let mut steps_per_run = 0u64;
    let secs = best_of(reps, || {
        let sc = Scenario::single(10e6, 20, 500, 0.0, 10);
        let mut sim = Simulator::new(sc, vec![Box::new(mocc_netsim::cc::Aimd::new())]);
        let mut steps = 0u64;
        while sim.process_next().is_some() {
            steps += 1;
        }
        black_box(sim.result().flows[0].total_acked);
        steps_per_run = steps;
    });
    steps_per_run as f64 / secs
}

fn sweep_cells_per_sec(threads: usize, reps: u64) -> f64 {
    let spec = reference_sweep();
    let cells = spec.cell_count() as f64;
    let runner = SweepRunner::with_threads(threads);
    let secs = best_of(reps, || {
        black_box(
            runner
                .run_factory(&spec, "cubic", &BaselineFactory::new("cubic"))
                .summary
                .mean_utility,
        );
    });
    cells / secs
}

fn mocc_cells_per_sec(threads: usize, reps: u64) -> f64 {
    let mut rng = StdRng::seed_from_u64(7);
    let agent = MoccAgent::new(MoccConfig::fast(), &mut rng);
    let spec = mocc_sweep();
    let cells = spec.cell_count() as f64;
    let eval = mocc_core::BatchMoccEvaluator::new(&agent, Preference::throughput(), 0.3);
    let runner = SweepRunner::with_threads(threads);
    let secs = best_of(reps, || {
        black_box(
            runner
                .run_cells(&spec, "mocc-batched", &eval)
                .summary
                .mean_utility,
        );
    });
    cells / secs
}

/// Lockstep environments driven by the rollout-collection metrics.
const ROLLOUT_ENVS: usize = 16;

/// A cheap synthetic [`Env`] for the rollout metrics: a policy-shaped
/// observation computed from a step counter, near-zero per-step cost.
/// Using it instead of the full `MoccEnv` makes the scalar/batched
/// ratio measure the *collector* (forward passes and bookkeeping), not
/// the simulator.
struct SyntheticEnv {
    t: u32,
    phase: u32,
    obs: Vec<f32>,
}

impl SyntheticEnv {
    fn new(phase: u32) -> Self {
        SyntheticEnv {
            t: 0,
            phase,
            obs: vec![0.0; OBS_DIM],
        }
    }

    fn fill(&mut self) -> Vec<f32> {
        // A few multiply-adds per element — varied, bounded, and far
        // cheaper than the forwards under measurement (a libm `sin`
        // per element would cost as much as a tanh and dilute the
        // collector comparison with env cost).
        let x = self.t.wrapping_add(self.phase) as f32 * 0.37;
        let mut v = x - x.floor() - 0.5;
        for o in self.obs.iter_mut() {
            v = 1.7 * v * (1.0 - v.abs());
            *o = v;
        }
        self.obs.clone()
    }
}

impl Env for SyntheticEnv {
    fn obs_dim(&self) -> usize {
        OBS_DIM
    }

    fn reset(&mut self) -> Vec<f32> {
        self.t = 0;
        self.fill()
    }

    fn step(&mut self, action: f32) -> (Vec<f32>, f32, bool) {
        self.t += 1;
        let done = self.t % 200 == 0;
        (self.fill(), -action.abs(), done)
    }
}

/// Transitions per second collecting rollouts over [`ROLLOUT_ENVS`]
/// synthetic environments with policy-shaped actor/critic networks —
/// either the historical per-env scalar loop (bit-exact scalar
/// kernels, exactly what `collect_rollout` runs), or the lockstep
/// batched collector as the batched training pipeline configures it
/// (`collect_rollouts_batched_tier` on the fast inference tier). Same
/// seeds, same envs, same step budget either way: the ratio is the
/// rollout-engine speedup a training run sees when it moves from the
/// per-env loop to the batched pipeline.
fn rollout_steps_per_sec(batched: bool, iters: u64) -> f64 {
    let mut rng = StdRng::seed_from_u64(41);
    let ppo = Ppo::new(OBS_DIM, &[64, 32], PpoConfig::default(), &mut rng);
    let steps = (iters as usize / ROLLOUT_ENVS).max(8);
    let total = (steps * ROLLOUT_ENVS) as f64;
    let secs = if batched {
        let mut scratch = BatchRolloutScratch::default();
        best_of(3, || {
            let mut envs: Vec<SyntheticEnv> = (0..ROLLOUT_ENVS)
                .map(|i| SyntheticEnv::new(i as u32 * 37))
                .collect();
            let mut refs: Vec<&mut dyn Env> = envs.iter_mut().map(|e| e as &mut dyn Env).collect();
            let mut rng = StdRng::seed_from_u64(43);
            let rollouts = collect_rollouts_batched_tier(
                &ppo.policy,
                &ppo.value,
                &mut refs,
                steps,
                &mut rng,
                &mut scratch,
                mocc_nn::ForwardTier::Fast,
            );
            black_box(rollouts.len());
        })
    } else {
        best_of(3, || {
            let mut rng = StdRng::seed_from_u64(43);
            let mut collected = 0usize;
            for i in 0..ROLLOUT_ENVS {
                let mut env = SyntheticEnv::new(i as u32 * 37);
                let mut rollout = Rollout::new(OBS_DIM);
                let mut obs = env.reset();
                for _ in 0..steps {
                    let (a, logp) = ppo.policy.act(&obs, &mut rng);
                    let v = ppo.value.forward(&obs)[0];
                    let (next, r, done) = env.step(a);
                    rollout.push(&obs, a, logp, r, v, done);
                    obs = if done { env.reset() } else { next };
                }
                rollout.last_value = ppo.value.forward(&obs)[0];
                collected += rollout.len();
            }
            black_box(collected);
        })
    };
    total / secs
}

/// Runs the whole fixed workload. See the module docs.
pub fn measure() -> PerfReport {
    let fixed = fixed_iters();
    // Exactly what the operator configured (MOCC_SWEEP_THREADS or
    // auto-detection) — no silent cap; the count is recorded in the
    // report and `check` refuses to compare mismatched workloads.
    let threads = SweepRunner::auto().threads();
    // Iteration counts: pinned by MOCC_BENCH_FIXED_ITERS, otherwise
    // sized to give stable timings in a few seconds total.
    let (i1, i32_, i256) = match fixed {
        Some(n) => (n, n, n),
        None => (100_000, 10_000, 2_000),
    };
    // Each timing is best-of-`reps`: the minimum estimates the noise
    // floor, so more repetitions make the adaptive numbers robust to
    // transient machine load.
    let reps = fixed.map(|n| n.min(3)).unwrap_or(5);
    use mocc_nn::ForwardTier::{Fast, Scalar};
    PerfReport {
        fixed_iters: fixed.unwrap_or(0),
        threads: threads as u64,
        forward_ns_b1: round3(forward_ns(1, i1, Scalar)),
        forward_ns_b32: round3(forward_ns(32, i32_, Scalar)),
        forward_ns_b256: round3(forward_ns(256, i256, Scalar)),
        forward_fast_ns_b1: round3(forward_ns(1, i1, Fast)),
        forward_fast_ns_b256: round3(forward_ns(256, i256, Fast)),
        sim_steps_per_sec: round3(sim_steps_per_sec(reps)),
        sweep_cells_per_sec: round3(sweep_cells_per_sec(threads, reps)),
        mocc_cells_per_sec: round3(mocc_cells_per_sec(threads, reps)),
        rollout_scalar_steps_per_sec: round3(rollout_steps_per_sec(false, i256)),
        rollout_batched_steps_per_sec: round3(rollout_steps_per_sec(true, i256)),
    }
}

/// Compares `got` against a `baseline` with tolerance `tol` in (0, 1].
/// Throughput metrics fail when below `tol × baseline`; latency metrics
/// fail when above `baseline / tol`. Returns human-readable per-metric
/// lines on success, or the failing comparisons.
///
/// The comparison refuses mismatched *workloads* up front: the run and
/// the baseline must record the same `fixed_iters` and `threads`, or
/// every ratio would compare different work and the gate would pass or
/// fail on configuration, not performance.
pub fn check(
    got: &PerfReport,
    baseline: &PerfReport,
    tol: f64,
) -> Result<Vec<String>, Vec<String>> {
    if got.fixed_iters != baseline.fixed_iters || got.threads != baseline.threads {
        return Err(vec![format!(
            "workload mismatch: run has fixed_iters={} threads={} but baseline has \
             fixed_iters={} threads={}; set {FIXED_ITERS_ENV}/{} to match the baseline \
             (or regenerate it, see docs/PERFORMANCE.md)",
            got.fixed_iters,
            got.threads,
            baseline.fixed_iters,
            baseline.threads,
            mocc_eval::THREADS_ENV,
        )]);
    }
    // (name, measured, baseline, higher_is_better)
    let metrics: [(&str, f64, f64, bool); 10] = [
        (
            "forward_ns_b1",
            got.forward_ns_b1,
            baseline.forward_ns_b1,
            false,
        ),
        (
            "forward_ns_b32",
            got.forward_ns_b32,
            baseline.forward_ns_b32,
            false,
        ),
        (
            "forward_ns_b256",
            got.forward_ns_b256,
            baseline.forward_ns_b256,
            false,
        ),
        (
            "forward_fast_ns_b1",
            got.forward_fast_ns_b1,
            baseline.forward_fast_ns_b1,
            false,
        ),
        (
            "forward_fast_ns_b256",
            got.forward_fast_ns_b256,
            baseline.forward_fast_ns_b256,
            false,
        ),
        (
            "sim_steps_per_sec",
            got.sim_steps_per_sec,
            baseline.sim_steps_per_sec,
            true,
        ),
        (
            "sweep_cells_per_sec",
            got.sweep_cells_per_sec,
            baseline.sweep_cells_per_sec,
            true,
        ),
        (
            "mocc_cells_per_sec",
            got.mocc_cells_per_sec,
            baseline.mocc_cells_per_sec,
            true,
        ),
        (
            "rollout_scalar_steps_per_sec",
            got.rollout_scalar_steps_per_sec,
            baseline.rollout_scalar_steps_per_sec,
            true,
        ),
        (
            "rollout_batched_steps_per_sec",
            got.rollout_batched_steps_per_sec,
            baseline.rollout_batched_steps_per_sec,
            true,
        ),
    ];
    let mut lines = Vec::new();
    let mut failures = Vec::new();
    for (name, g, b, higher) in metrics {
        let ratio = if b > 0.0 { g / b } else { f64::INFINITY };
        let ok = if higher { g >= tol * b } else { g <= b / tol };
        let verdict = if ok { "ok" } else { "FAIL" };
        let line = format!("{name}: {g} vs baseline {b} (ratio {ratio:.2}) {verdict}");
        if ok {
            lines.push(line);
        } else {
            failures.push(line);
        }
    }
    if failures.is_empty() {
        Ok(lines)
    } else {
        Err(failures)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(v: f64) -> PerfReport {
        PerfReport {
            fixed_iters: 0,
            threads: 4,
            forward_ns_b1: v,
            forward_ns_b32: v,
            forward_ns_b256: v,
            forward_fast_ns_b1: v,
            forward_fast_ns_b256: v,
            sim_steps_per_sec: v,
            sweep_cells_per_sec: v,
            mocc_cells_per_sec: v,
            rollout_scalar_steps_per_sec: v,
            rollout_batched_steps_per_sec: v,
        }
    }

    #[test]
    fn report_json_round_trips() {
        let r = report(123.456);
        let json = r.to_canonical_json();
        let back = PerfReport::from_json(&json).unwrap();
        assert_eq!(back, r);
        assert_eq!(back.to_canonical_json(), json);
        // Keys are sorted in canonical form.
        let a = json.find("\"fixed_iters\"").unwrap();
        let b = json.find("\"forward_ns_b1\"").unwrap();
        let c = json.find("\"threads\"").unwrap();
        assert!(a < b && b < c);
    }

    #[test]
    fn check_rejects_mismatched_workloads() {
        let base = report(100.0);
        let mut other_iters = report(100.0);
        other_iters.fixed_iters = 2000;
        let err = check(&other_iters, &base, 0.5).unwrap_err();
        assert!(err[0].contains("workload mismatch"), "{err:?}");
        let mut other_threads = report(100.0);
        other_threads.threads = 8;
        let err = check(&other_threads, &base, 0.5).unwrap_err();
        assert!(err[0].contains("workload mismatch"), "{err:?}");
    }

    #[test]
    fn check_passes_identical_and_fails_regression() {
        let base = report(100.0);
        assert!(check(&base, &base, 0.5).is_ok());
        // Throughputs halved AND latencies doubled: everything fails.
        let mut bad = report(100.0);
        bad.sweep_cells_per_sec = 49.0;
        bad.forward_ns_b1 = 201.0;
        let failures = check(&bad, &base, 0.5).unwrap_err();
        assert_eq!(failures.len(), 2);
        assert!(failures.iter().any(|f| f.contains("sweep_cells_per_sec")));
        assert!(failures.iter().any(|f| f.contains("forward_ns_b1")));
        // Improvements never fail.
        let mut good = report(100.0);
        good.sweep_cells_per_sec = 500.0;
        good.forward_ns_b1 = 10.0;
        assert!(check(&good, &base, 0.5).is_ok());
    }

    #[test]
    fn frozen_specs_have_expected_cell_counts() {
        assert_eq!(reference_sweep().cell_count(), 64);
        assert_eq!(mocc_sweep().cell_count(), 16);
    }

    #[test]
    fn env_parsing_is_strict() {
        assert_eq!(parse_fixed_iters(None), Ok(None));
        assert_eq!(parse_fixed_iters(Some("2")), Ok(Some(2)));
        for bad in ["0", "-1", "many", "2.5", ""] {
            let err = parse_fixed_iters(Some(bad)).unwrap_err();
            assert!(err.contains(FIXED_ITERS_ENV), "{err}");
        }
        assert_eq!(parse_tolerance(None), Ok(0.5));
        assert_eq!(parse_tolerance(Some("0.8")), Ok(0.8));
        for bad in ["0", "1.5", "-0.2", "half", ""] {
            let err = parse_tolerance(Some(bad)).unwrap_err();
            assert!(err.contains(TOLERANCE_ENV), "{err}");
        }
    }
}
