//! The workspace's single monotonic-clock chokepoint.
//!
//! The byte-determinism contract (docs/PERFORMANCE.md, docs/AUDIT.md)
//! forbids clock reads in library code: golden reports, the
//! content-addressed cache, and training checkpoints must not depend
//! on when they were produced. Timing is still needed — the perf gate
//! and the figure binaries report wall time — so every monotonic read
//! in the workspace funnels through this module, which is the one
//! file on `mocc audit`'s clock-discipline allowlist. Timing values
//! must only ever flow into logs and perf reports, never into
//! simulation state or model bytes.

use std::time::{Duration, Instant};

/// Seconds since the first call to any function in this module
/// (a process-wide monotonic epoch).
///
/// This is the `fn() -> f64` shape that `mocc_core::TrainOptions`
/// accepts as an injected clock, so trainer wall-time logging never
/// reads `Instant` itself.
pub fn monotonic_secs() -> f64 {
    static EPOCH: std::sync::OnceLock<Instant> = std::sync::OnceLock::new();
    let epoch = *EPOCH.get_or_init(Instant::now);
    epoch.elapsed().as_secs_f64()
}

/// A started wall-clock measurement, for perf and figure binaries.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    started: Instant,
}

impl Stopwatch {
    /// Starts measuring now.
    pub fn start() -> Self {
        Self {
            started: Instant::now(),
        }
    }

    /// Time elapsed since [`Stopwatch::start`].
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    /// Elapsed time in seconds.
    pub fn elapsed_secs(&self) -> f64 {
        self.elapsed().as_secs_f64()
    }

    /// Elapsed time in milliseconds.
    pub fn elapsed_ms(&self) -> f64 {
        self.elapsed().as_secs_f64() * 1e3
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_secs_is_monotone() {
        let a = monotonic_secs();
        let b = monotonic_secs();
        assert!(b >= a);
        assert!(a >= 0.0);
    }

    #[test]
    fn stopwatch_measures_forward() {
        let sw = Stopwatch::start();
        let e1 = sw.elapsed_secs();
        let e2 = sw.elapsed_secs();
        assert!(e2 >= e1);
        assert!(sw.elapsed_ms() >= 0.0);
    }
}
