//! Criterion benchmarks of the simulation substrate itself: events per
//! second for single- and multi-flow scenarios, and one PPO training
//! iteration (the unit of every training-time figure).

use criterion::{criterion_group, criterion_main, Criterion};
use mocc_cc::Cubic;
use mocc_core::{MoccAgent, MoccConfig, Preference};
use mocc_netsim::cc::FixedRate;
use mocc_netsim::{Scenario, ScenarioRange, Simulator};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_simulator(c: &mut Criterion) {
    c.bench_function("sim_10s_fixed_rate_10mbps", |b| {
        b.iter(|| {
            let sc = Scenario::single(10e6, 20, 500, 0.0, 10);
            let res = Simulator::new(sc, vec![Box::new(FixedRate::new(8e6))]).run();
            black_box(res.flows[0].total_acked)
        })
    });

    c.bench_function("sim_10s_cubic_3flows", |b| {
        b.iter(|| {
            let sc = Scenario::dumbbell(12e6, 10, 100, 3, 2.0, 10);
            let ccs: Vec<Box<dyn mocc_netsim::CongestionControl>> = (0..3)
                .map(|_| Box::new(Cubic::new()) as Box<dyn mocc_netsim::CongestionControl>)
                .collect();
            let res = Simulator::new(sc, ccs).run();
            black_box(res.flows.len())
        })
    });
}

fn bench_training(c: &mut Criterion) {
    let cfg = MoccConfig {
        rollout_steps: 100,
        episode_mis: 100,
        ..MoccConfig::default()
    };
    c.bench_function("ppo_training_iteration_100steps", |b| {
        let mut rng = StdRng::seed_from_u64(1);
        let mut agent = MoccAgent::new(cfg, &mut rng);
        let mut i = 0usize;
        b.iter(|| {
            let r = mocc_core::train_iteration(
                &mut agent,
                Preference::throughput(),
                ScenarioRange::training(),
                i,
                &mut rng,
            );
            i += 1;
            black_box(r)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_simulator, bench_training
}
criterion_main!(benches);
