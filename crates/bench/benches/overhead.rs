//! Criterion micro-benchmarks behind Fig. 17: per-invocation cost of
//! policy inference (user-space deployments pay this every monitor
//! interval) versus heuristic per-ACK arithmetic (kernel datapaths).

use criterion::{criterion_group, criterion_main, Criterion};
use mocc_core::{stats_features, MoccAgent, MoccConfig, Preference};
use mocc_netsim::cc::{AckInfo, RateControl, SenderView};
use mocc_netsim::time::{SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn view() -> SenderView {
    SenderView {
        now: SimTime::from_secs(1),
        mss_bytes: 1500,
        min_rtt: Some(SimDuration::from_millis(20)),
        srtt: Some(SimDuration::from_millis(25)),
        inflight_pkts: 10,
        total_sent: 1000,
        total_acked: 990,
        total_lost: 0,
    }
}

fn bench_inference(c: &mut Criterion) {
    // An untrained agent has identical inference cost to a trained one;
    // avoid depending on the model cache inside benches.
    let mut rng = StdRng::seed_from_u64(0);
    let agent = MoccAgent::new(MoccConfig::default(), &mut rng);
    let hist = vec![0.1f32; 30];
    let pref = Preference::throughput();
    c.bench_function("mocc_prefnet_inference", |b| {
        b.iter(|| black_box(agent.act(black_box(&pref), black_box(&hist))))
    });

    let aurora = mocc_core::AuroraAgent::new(MoccConfig::default(), pref, &mut rng);
    let obs = vec![0.1f32; 30];
    c.bench_function("aurora_mlp_inference", |b| {
        b.iter(|| black_box(aurora.ppo.policy.mean_action(black_box(&obs))))
    });
}

fn bench_heuristics(c: &mut Criterion) {
    let v = view();
    let ack = AckInfo {
        seq: 1,
        rtt: SimDuration::from_millis(25),
        acked_bytes: 1500,
    };
    let mut group = c.benchmark_group("per_ack");
    for name in ["cubic", "vegas", "copa"] {
        let mut cc = mocc_cc::by_name(name).unwrap();
        let mut ctl = RateControl::open();
        cc.init(&v, &mut ctl);
        group.bench_function(name, |b| {
            b.iter(|| cc.on_ack(black_box(&v), black_box(&ack), &mut ctl))
        });
    }
    group.finish();
}

fn bench_features(c: &mut Criterion) {
    let mi = mocc_netsim::MonitorStats {
        start: SimTime::ZERO,
        end: SimTime::from_millis(40),
        pkts_sent: 100,
        pkts_acked: 99,
        pkts_lost: 1,
        throughput_bps: 5e6,
        sending_rate_bps: 5.1e6,
        mean_rtt: Some(SimDuration::from_millis(25)),
        loss_rate: 0.01,
        send_ratio: 1.01,
        latency_ratio: 1.2,
        latency_gradient: 0.001,
    };
    c.bench_function("mi_feature_extraction", |b| {
        b.iter(|| black_box(stats_features(black_box(&mi))))
    });
}

criterion_group!(benches, bench_inference, bench_heuristics, bench_features);
criterion_main!(benches);
