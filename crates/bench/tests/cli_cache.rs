//! End-to-end tests for the `mocc` binary's cache surface: `run
//! --cache`, the `cache stats|verify|gc` subcommands, and the `serve`
//! daemon's line-JSON protocol (docs/CACHING.md). Everything runs the
//! real executable against the shipped example specs and committed
//! golden fixtures.

use std::io::{BufRead, BufReader, Write};
use std::path::PathBuf;
use std::process::{Command, Output, Stdio};

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("crates/bench sits two levels under the repo root")
        .to_path_buf()
}

fn mocc(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_mocc"))
        .args(args)
        .current_dir(repo_root())
        .output()
        .expect("mocc runs")
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mocc-cli-cache-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn stderr_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

/// Cold run fills the store, warm run is all-hit, and both `--out`
/// files are byte-identical to the committed golden fixture; the
/// maintenance subcommands agree the store is whole.
#[test]
fn run_cache_twice_matches_golden_and_store_verifies() {
    let dir = temp_dir("twice");
    let store = dir.join("store");
    let store_arg = store.to_str().expect("utf-8 temp path");
    let golden = std::fs::read(repo_root().join("tests/fixtures/golden_cubic.json"))
        .expect("golden fixture present");
    let spec = "examples/specs/sweep_cubic.json";

    let cold_out = dir.join("cold.json");
    let cold = mocc(&[
        "run",
        spec,
        "--cache-dir",
        store_arg,
        "--out",
        cold_out.to_str().expect("utf-8"),
    ]);
    assert!(
        cold.status.success(),
        "cold run failed: {}",
        stderr_of(&cold)
    );
    assert!(
        stderr_of(&cold).contains("cache: 0 hits, 16 misses"),
        "cold run not all-miss: {}",
        stderr_of(&cold)
    );
    assert_eq!(std::fs::read(&cold_out).expect("cold output"), golden);

    let warm_out = dir.join("warm.json");
    let warm = mocc(&[
        "run",
        spec,
        "--cache-dir",
        store_arg,
        "--out",
        warm_out.to_str().expect("utf-8"),
    ]);
    assert!(
        warm.status.success(),
        "warm run failed: {}",
        stderr_of(&warm)
    );
    assert!(
        stderr_of(&warm).contains("cache: 16 hits, 0 misses"),
        "warm run simulated cells: {}",
        stderr_of(&warm)
    );
    assert_eq!(std::fs::read(&warm_out).expect("warm output"), golden);

    let stats = mocc(&["cache", "stats", "--cache-dir", store_arg]);
    assert!(stats.status.success());
    let stats_text = String::from_utf8_lossy(&stats.stdout).into_owned();
    assert!(
        stats_text.contains("objects:      16"),
        "stats: {stats_text}"
    );

    let verify = mocc(&["cache", "verify", "--cache-dir", store_arg]);
    assert!(verify.status.success(), "verify: {}", stderr_of(&verify));

    let gc = mocc(&["cache", "gc", "--cache-dir", store_arg]);
    assert!(gc.status.success(), "gc: {}", stderr_of(&gc));
    let gc_text = String::from_utf8_lossy(&gc.stdout).into_owned();
    assert!(gc_text.contains("kept 16 objects"), "gc: {gc_text}");

    let _ = std::fs::remove_dir_all(&dir);
}

/// A flipped bit in a stored blob makes `cache verify` exit nonzero;
/// the next cached run recomputes the damaged cell and still emits
/// golden bytes, after which `verify` passes again.
#[test]
fn corrupt_object_fails_verify_then_run_recovers() {
    let dir = temp_dir("corrupt");
    let store = dir.join("store");
    let store_arg = store.to_str().expect("utf-8 temp path");
    let spec = "examples/specs/sweep_cubic.json";
    let golden = std::fs::read(repo_root().join("tests/fixtures/golden_cubic.json"))
        .expect("golden fixture present");

    let cold = mocc(&["run", spec, "--cache-dir", store_arg, "--out", "/dev/null"]);
    assert!(
        cold.status.success(),
        "cold run failed: {}",
        stderr_of(&cold)
    );

    let shard = std::fs::read_dir(store.join("objects"))
        .expect("objects dir")
        .next()
        .expect("at least one shard")
        .expect("shard entry")
        .path();
    let blob = std::fs::read_dir(&shard)
        .expect("shard dir")
        .next()
        .expect("at least one blob")
        .expect("blob entry")
        .path();
    let mut bytes = std::fs::read(&blob).expect("read blob");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    std::fs::write(&blob, bytes).expect("corrupt blob");

    let verify = mocc(&["cache", "verify", "--cache-dir", store_arg]);
    assert!(
        !verify.status.success(),
        "verify missed the corruption: {}",
        String::from_utf8_lossy(&verify.stdout)
    );

    let out = dir.join("recovered.json");
    let recovered = mocc(&[
        "run",
        spec,
        "--cache-dir",
        store_arg,
        "--out",
        out.to_str().expect("utf-8"),
    ]);
    assert!(recovered.status.success(), "{}", stderr_of(&recovered));
    assert!(
        stderr_of(&recovered).contains("cache: 15 hits, 1 misses"),
        "recovery should recompute exactly the damaged cell: {}",
        stderr_of(&recovered)
    );
    assert_eq!(std::fs::read(&out).expect("recovered output"), golden);

    let verify = mocc(&["cache", "verify", "--cache-dir", store_arg]);
    assert!(
        verify.status.success(),
        "store not healed: {}",
        stderr_of(&verify)
    );

    let _ = std::fs::remove_dir_all(&dir);
}

/// The serve daemon over stdin/stdout: ping, a cached run by spec
/// path (warm store → zero misses, report matching the golden),
/// stats, an error answer for junk, and a clean shutdown.
#[test]
fn serve_answers_the_line_json_protocol_over_stdin() {
    let dir = temp_dir("serve");
    let store = dir.join("store");
    let store_arg = store.to_str().expect("utf-8 temp path");
    let spec = "examples/specs/sweep_cubic.json";

    let warmup = mocc(&["run", spec, "--cache-dir", store_arg, "--out", "/dev/null"]);
    assert!(
        warmup.status.success(),
        "warm-up run failed: {}",
        stderr_of(&warmup)
    );

    let mut child = Command::new(env!("CARGO_BIN_EXE_mocc"))
        .args(["serve", "--cache-dir", store_arg])
        .current_dir(repo_root())
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("serve spawns");
    let mut stdin = child.stdin.take().expect("piped stdin");
    let stdout = BufReader::new(child.stdout.take().expect("piped stdout"));
    writeln!(stdin, "{{\"op\":\"ping\"}}").expect("write ping");
    writeln!(stdin, "{{\"op\":\"run\",\"path\":\"{spec}\"}}").expect("write run");
    writeln!(stdin, "{{\"op\":\"nonsense\"}}").expect("write junk");
    writeln!(stdin, "{{\"op\":\"stats\"}}").expect("write stats");
    writeln!(stdin, "{{\"op\":\"shutdown\"}}").expect("write shutdown");
    drop(stdin);

    let lines: Vec<String> = stdout.lines().map(|l| l.expect("read response")).collect();
    assert_eq!(lines.len(), 5, "one response per request: {lines:#?}");
    assert_eq!(lines[0], "{\"ok\":true,\"op\":\"ping\"}");
    assert!(
        lines[1].starts_with("{\"hits\":16,\"misses\":0,\"ok\":true,\"report\":"),
        "warm serve run should be all-hit: {}",
        &lines[1][..lines[1].len().min(120)]
    );
    assert!(
        lines[2].contains("\"ok\":false") && lines[2].contains("unknown op"),
        "junk op should answer an error: {}",
        lines[2]
    );
    assert!(
        lines[3].contains("\"ok\":true") && lines[3].contains("\"objects\":16"),
        "stats: {}",
        lines[3]
    );
    assert_eq!(lines[4], "{\"ok\":true,\"op\":\"shutdown\"}");
    let status = child.wait().expect("serve exits");
    assert!(status.success(), "serve exited with {status}");

    let _ = std::fs::remove_dir_all(&dir);
}

/// Hostile input keeps the daemon alive: malformed JSON, a non-object
/// request, a missing/non-string `op`, invalid UTF-8, and an
/// oversized (>1 MiB) line each answer a structured `"ok":false`
/// error on their own response line, after which the session still
/// serves a normal `ping` and a clean `shutdown`.
#[test]
fn serve_survives_malformed_oversized_and_binary_requests() {
    let dir = temp_dir("serve-hostile");
    let store = dir.join("store");
    let store_arg = store.to_str().expect("utf-8 temp path");

    let mut child = Command::new(env!("CARGO_BIN_EXE_mocc"))
        .args(["serve", "--cache-dir", store_arg])
        .current_dir(repo_root())
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("serve spawns");
    let mut stdin = child.stdin.take().expect("piped stdin");
    let stdout = BufReader::new(child.stdout.take().expect("piped stdout"));

    writeln!(stdin, "this is not json").expect("write junk");
    writeln!(stdin, "[1,2,3]").expect("write non-object");
    writeln!(stdin, "{{\"op\":42}}").expect("write non-string op");
    stdin
        .write_all(b"\x80\xff binary \x00 junk\n")
        .expect("write invalid utf-8");
    // One request line well past the 1 MiB cap; the daemon must
    // answer an error without buffering it, then keep serving.
    let oversized = vec![b'x'; 3 << 20];
    stdin.write_all(&oversized).expect("write oversized line");
    stdin.write_all(b"\n").expect("terminate oversized line");
    writeln!(stdin, "{{\"op\":\"ping\"}}").expect("write ping");
    writeln!(stdin, "{{\"op\":\"shutdown\"}}").expect("write shutdown");
    drop(stdin);

    let lines: Vec<String> = stdout.lines().map(|l| l.expect("read response")).collect();
    assert_eq!(lines.len(), 7, "one response per request: {lines:#?}");
    for (i, why) in [
        (0usize, "malformed JSON"),
        (1, "non-object request"),
        (2, "non-string op"),
        (3, "invalid UTF-8"),
        (4, "oversized line"),
    ] {
        assert!(
            lines[i].contains("\"ok\":false"),
            "{why} should answer a structured error: {}",
            lines[i]
        );
    }
    assert!(
        lines[4].contains("exceeds"),
        "oversized line should name the cap: {}",
        lines[4]
    );
    assert_eq!(
        lines[5], "{\"ok\":true,\"op\":\"ping\"}",
        "daemon must still serve after hostile input"
    );
    assert_eq!(lines[6], "{\"ok\":true,\"op\":\"shutdown\"}");
    let status = child.wait().expect("serve exits");
    assert!(status.success(), "serve exited with {status}");

    let _ = std::fs::remove_dir_all(&dir);
}

/// The serve daemon on a Unix socket: a client connects, runs the
/// protocol, and `shutdown` terminates the daemon and removes the
/// socket file.
#[test]
fn serve_answers_over_a_unix_socket() {
    use std::os::unix::net::UnixStream;
    let dir = temp_dir("socket");
    let store = dir.join("store");
    let socket = dir.join("mocc.sock");
    let mut child = Command::new(env!("CARGO_BIN_EXE_mocc"))
        .args([
            "serve",
            "--cache-dir",
            store.to_str().expect("utf-8"),
            "--socket",
            socket.to_str().expect("utf-8"),
        ])
        .current_dir(repo_root())
        .stderr(Stdio::null())
        .spawn()
        .expect("serve spawns");

    let mut conn = None;
    for _ in 0..100 {
        match UnixStream::connect(&socket) {
            Ok(c) => {
                conn = Some(c);
                break;
            }
            Err(_) => std::thread::sleep(std::time::Duration::from_millis(50)),
        }
    }
    let conn = conn.expect("daemon came up within 5s");
    let mut reader = BufReader::new(conn.try_clone().expect("clone stream"));
    let mut writer = conn;
    let mut line = String::new();

    writeln!(writer, "{{\"op\":\"ping\"}}").expect("write ping");
    reader.read_line(&mut line).expect("read pong");
    assert_eq!(line.trim_end(), "{\"ok\":true,\"op\":\"ping\"}");

    line.clear();
    writeln!(writer, "{{\"op\":\"shutdown\"}}").expect("write shutdown");
    reader.read_line(&mut line).expect("read shutdown ack");
    assert_eq!(line.trim_end(), "{\"ok\":true,\"op\":\"shutdown\"}");

    let status = child.wait().expect("serve exits");
    assert!(status.success(), "serve exited with {status}");
    assert!(!socket.exists(), "socket file left behind");

    let _ = std::fs::remove_dir_all(&dir);
}
