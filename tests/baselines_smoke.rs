//! Smoke tests over the public `mocc::cc` API: every baseline named in
//! the ISSUE (and every name the factory advertises) must construct and
//! move traffic through the simulator. Guards the constructors against
//! silent rot — a baseline that compiles but panics on construction or
//! stalls on a clean link would otherwise only surface deep inside a
//! figure run.

use mocc::cc;
use mocc::netsim::{Scenario, Simulator};

/// The canonical scheme names; `pcc` is accepted as an alias family
/// covered by the two concrete PCC variants the factory exposes.
const EXPECTED: &[&str] = &[
    "cubic",
    "bbr",
    "copa",
    "vegas",
    "pcc-allegro",
    "pcc-vivace",
    "orca",
];

#[test]
fn factory_covers_expected_baselines() {
    for name in EXPECTED {
        let cc = cc::by_name(name).unwrap_or_else(|| panic!("factory lost baseline `{name}`"));
        assert_eq!(cc.name(), *name, "constructor name drifted for `{name}`");
    }
    // The advertised list and the factory agree both ways.
    for name in cc::BASELINES {
        assert!(
            cc::by_name(name).is_some(),
            "BASELINES lists `{name}` but by_name cannot build it"
        );
    }
    assert_eq!(
        cc::BASELINES.len(),
        EXPECTED.len(),
        "BASELINES gained or lost a scheme; update this smoke test deliberately"
    );
}

#[test]
fn typed_constructors_match_factory_names() {
    // The concrete types remain directly constructible (public API).
    let typed: Vec<Box<dyn mocc::netsim::CongestionControl>> = vec![
        Box::new(cc::Cubic::new()),
        Box::new(cc::Vegas::new()),
        Box::new(cc::Bbr::new()),
        Box::new(cc::Copa::new()),
        Box::new(cc::Pcc::allegro()),
        Box::new(cc::Pcc::vivace()),
        Box::new(cc::OrcaLike::new()),
    ];
    for c in &typed {
        assert!(
            cc::BASELINES.contains(&c.name()),
            "typed constructor `{}` is not advertised in BASELINES",
            c.name()
        );
    }
}

/// Every baseline drives real packets on a clean 10 Mbps link.
#[test]
fn every_baseline_moves_traffic() {
    for name in cc::BASELINES {
        let sc = Scenario::single(10e6, 20, 500, 0.0, 10);
        let cc = cc::by_name(name).unwrap();
        let res = Simulator::new(sc, vec![cc]).run();
        let f = &res.flows[0];
        assert!(
            f.total_acked > 0,
            "baseline `{name}` delivered zero packets"
        );
        // No loss-rate bar: PCC's probing intentionally overdrives the
        // queue early on, so loss alone says nothing about rot here.
        assert!(
            f.utilization > 0.05,
            "baseline `{name}` utilization {:.3} is implausibly low",
            f.utilization
        );
    }
}
