//! Cache-correctness battery for the content-addressed result store
//! (`docs/CACHING.md`).
//!
//! Four contracts, each with its own section below:
//!
//! 1. **Key stability** — a cell's cache key is a pure function of
//!    the semantic inputs: invariant under spec-document field
//!    reordering, thread count, batch size, and the experiment name;
//!    moved by every semantic field (axes, seed, scheme, policy
//!    identity).
//! 2. **Byte identity** — a cached run reproduces the uncached report
//!    byte for byte, cold (all misses) and warm (all hits), for
//!    randomized sweep and competition specs with and without a
//!    policy section.
//! 3. **Corruption recovery** — bit flips, truncations, deleted
//!    blobs, and half-written ledger lines degrade to recomputation,
//!    never to wrong bytes; `verify` reports each kind of damage.
//! 4. **Concurrency** — racing runners sharing one store produce the
//!    same bytes as a cold solo run and leave a clean ledger.

use mocc::core::{agent_from_policy, policy_digest, run_experiment, run_experiment_cached};
use mocc::eval::{
    competition_cell_key, sweep_cell_key, CompetitionSpec, ContenderMix, ExperimentSpec, FlowLoad,
    MoccPrefSpec, PolicyIdentity, PolicySpec, SchemeSpec, SweepRunner, SweepSpec, TraceShape,
    Workload,
};
use mocc::store::{LedgerScan, ResultStore};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Value;
use std::path::{Path, PathBuf};

/// A fresh store under a unique temp directory (removed by
/// `drop_store`; a leaked directory on panic is harmless).
fn temp_store(name: &str) -> (PathBuf, ResultStore) {
    let dir = std::env::temp_dir().join(format!("mocc-cachetest-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = ResultStore::open(&dir).expect("open store");
    (dir, store)
}

fn drop_store(dir: &Path) {
    let _ = std::fs::remove_dir_all(dir);
}

/// Deterministically generates a small randomized experiment — sweep
/// or competition, baseline or policy-driven — cheap enough to
/// simulate several times per proptest case.
fn small_experiment(seed: u64) -> ExperimentSpec {
    let mut rng = StdRng::seed_from_u64(seed);
    let with_policy = rng.gen_bool(0.5);
    let baselines = ["cubic", "bbr", "vegas", "copa"];
    let moccs = ["mocc", "mocc:thr", "mocc:lat", "mocc:bal"];
    let pick = |rng: &mut StdRng| {
        if with_policy && rng.gen_bool(0.5) {
            moccs[rng.gen_range(0..moccs.len())].to_string()
        } else {
            baselines[rng.gen_range(0..baselines.len())].to_string()
        }
    };
    let matrix = SweepSpec {
        bandwidth_mbps: vec![rng.gen_range(2.0f64..20.0), rng.gen_range(2.0f64..20.0)],
        owd_ms: vec![rng.gen_range(5u64..60)],
        queue_pkts: vec![rng.gen_range(20usize..400)],
        loss: vec![0.0],
        shapes: vec![TraceShape::Constant],
        loads: vec![FlowLoad::Steady(rng.gen_range(1usize..3))],
        duration_s: rng.gen_range(2u64..5),
        mss_bytes: 1500,
        seed: rng.gen(),
        agent_mi: rng.gen_bool(0.5),
    };
    let mut exp = if rng.gen_bool(0.6) {
        let scheme = SchemeSpec::parse(&pick(&mut rng)).expect("generator labels parse");
        ExperimentSpec::from_sweep("cache-prop", scheme, &matrix)
    } else {
        let comp = CompetitionSpec {
            mixes: vec![ContenderMix::Duel(vec![pick(&mut rng), pick(&mut rng)])],
            bandwidth_mbps: vec![matrix.bandwidth_mbps[0]],
            owd_ms: matrix.owd_ms.clone(),
            queue_pkts: matrix.queue_pkts.clone(),
            duration_s: matrix.duration_s,
            mss_bytes: 1500,
            seed: matrix.seed,
            agent_mi: matrix.agent_mi,
            tcp_baseline: "cubic".to_string(),
            fair_jain: 0.8,
            fair_sustain_s: 2,
        };
        ExperimentSpec::from_competition("cache-prop-competition", &comp)
    };
    if with_policy {
        exp.policy = Some(PolicySpec {
            path: None,
            seed: rng.gen_range(1u64..100),
            config: "fast".to_string(),
            preference: MoccPrefSpec::Balanced,
            initial_rate_frac: 0.3,
            batch: rng.gen_range(1usize..8),
            fast_math: rng.gen_bool(0.25),
        });
    }
    exp
}

/// The policy identity the cached experiment path derives — rebuilt
/// here from public pieces so key computations can run without a
/// store.
fn identity(exp: &ExperimentSpec) -> Option<PolicyIdentity> {
    if !exp.needs_policy() {
        return None;
    }
    let policy = exp.policy.as_ref().expect("validated spec has a policy");
    let agent = agent_from_policy(policy).expect("policy materializes");
    Some(PolicyIdentity {
        digest: policy_digest(&agent),
        preference: policy.preference.label(),
        initial_rate_frac: policy.initial_rate_frac,
        fast_math: policy.fast_math,
    })
}

/// Every cell's cache key, in cell order.
fn cell_keys(exp: &ExperimentSpec) -> Vec<String> {
    let id = identity(exp);
    match &exp.workload {
        Workload::Sweep(w) => {
            let spec = exp.to_sweep_spec().expect("sweep workload");
            spec.expand()
                .iter()
                .map(|c| sweep_cell_key(c, w.scheme.label(), &spec, id.as_ref()))
                .collect()
        }
        Workload::Competition(_) => {
            let spec = exp.to_competition_spec().expect("competition workload");
            spec.expand()
                .iter()
                .map(|c| competition_cell_key(c, &spec, id.as_ref()))
                .collect()
        }
    }
}

/// Re-emits a JSON value with every object's keys in **reverse**
/// order — the canonical writer sorts them — to prove document field
/// order is immaterial to parsing and to cache keys.
fn to_json_reversed(v: &Value) -> String {
    match v {
        Value::Obj(map) => {
            let fields: Vec<String> = map
                .iter()
                .rev()
                .map(|(k, val)| {
                    let key = serde_json::to_string(&Value::Str(k.clone())).expect("key encodes");
                    format!("{key}:{}", to_json_reversed(val))
                })
                .collect();
            format!("{{{}}}", fields.join(","))
        }
        Value::Arr(items) => {
            let items: Vec<String> = items.iter().map(to_json_reversed).collect();
            format!("[{}]", items.join(","))
        }
        other => serde_json::to_string(other).expect("scalar encodes"),
    }
}

// ---- 1. key stability -------------------------------------------------

/// Reordering every object's fields in the spec document changes
/// nothing: the reparsed experiment produces identical cache keys.
#[test]
fn keys_are_invariant_under_spec_field_reordering() {
    for seed in 0..16u64 {
        let exp = small_experiment(seed);
        let canonical = exp.to_canonical_json();
        let value: Value = serde_json::from_str(&canonical).expect("canonical parses");
        let reversed = to_json_reversed(&value);
        assert_ne!(canonical, reversed, "seed {seed}: reversal is a no-op");
        let reparsed = ExperimentSpec::from_json(&reversed).expect("reversed doc parses");
        assert_eq!(
            cell_keys(&exp),
            cell_keys(&reparsed),
            "seed {seed}: field order moved a cache key"
        );
    }
}

/// The documented exclusions really are excluded: the experiment name
/// and the policy batch size (like the thread count, which is not a
/// key input at all) leave every key untouched. Byte-identity across
/// threads and batches is what makes this safe — see
/// `cached_report_is_byte_identical_cold_and_warm` and the golden
/// suite's thread/batch gates.
#[test]
fn name_threads_and_batch_never_move_a_key() {
    let mut exp = small_experiment(3);
    exp.policy = Some(PolicySpec {
        path: None,
        seed: 11,
        config: "fast".to_string(),
        preference: MoccPrefSpec::Balanced,
        initial_rate_frac: 0.3,
        batch: 4,
        fast_math: false,
    });
    let before = cell_keys(&exp);
    exp.name = "a-completely-different-name".to_string();
    exp.policy.as_mut().expect("policy set").batch = 64;
    assert_eq!(
        before,
        cell_keys(&exp),
        "renaming the experiment or changing the batch size moved a key"
    );
}

/// Every semantic input moves every key: scenario axes, the derived
/// seed, and each component of the policy identity (model digest via
/// the policy seed, default preference, initial rate).
#[test]
fn semantic_mutations_move_every_key() {
    let base = SweepSpec {
        bandwidth_mbps: vec![8.0],
        owd_ms: vec![20],
        queue_pkts: vec![100],
        loss: vec![0.0],
        shapes: vec![TraceShape::Constant],
        loads: vec![FlowLoad::Steady(1)],
        duration_s: 3,
        mss_bytes: 1500,
        seed: 7,
        agent_mi: true,
    };
    let policy = PolicySpec {
        path: None,
        seed: 11,
        config: "fast".to_string(),
        preference: MoccPrefSpec::Balanced,
        initial_rate_frac: 0.3,
        batch: 4,
        fast_math: false,
    };
    let exp_with = |matrix: &SweepSpec, scheme: &str, policy: Option<PolicySpec>| {
        let mut exp = ExperimentSpec::from_sweep(
            "mutation",
            SchemeSpec::parse(scheme).expect("scheme parses"),
            matrix,
        );
        exp.policy = policy;
        exp
    };
    let reference = cell_keys(&exp_with(&base, "mocc", Some(policy.clone())));
    let mutations: Vec<(&str, ExperimentSpec)> = vec![
        ("duration_s", {
            let mut m = base.clone();
            m.duration_s += 1;
            exp_with(&m, "mocc", Some(policy.clone()))
        }),
        ("seed", {
            let mut m = base.clone();
            m.seed += 1;
            exp_with(&m, "mocc", Some(policy.clone()))
        }),
        ("mss_bytes", {
            let mut m = base.clone();
            m.mss_bytes = 1400;
            exp_with(&m, "mocc", Some(policy.clone()))
        }),
        ("agent_mi", {
            let mut m = base.clone();
            m.agent_mi = false;
            exp_with(&m, "mocc", Some(policy.clone()))
        }),
        ("scheme", exp_with(&base, "mocc:thr", Some(policy.clone()))),
        ("policy seed (digest)", {
            let mut p = policy.clone();
            p.seed = 12;
            exp_with(&base, "mocc", Some(p))
        }),
        ("policy preference", {
            let mut p = policy.clone();
            p.preference = MoccPrefSpec::Throughput;
            exp_with(&base, "mocc", Some(p))
        }),
        ("policy initial_rate_frac", {
            let mut p = policy.clone();
            p.initial_rate_frac = 0.5;
            exp_with(&base, "mocc", Some(p))
        }),
        ("policy fast_math (inference tier)", {
            let mut p = policy.clone();
            p.fast_math = true;
            exp_with(&base, "mocc", Some(p))
        }),
    ];
    assert_eq!(
        reference,
        cell_keys(&exp_with(&base, "mocc", Some(policy))),
        "identical inputs must rehash identically"
    );
    for (what, mutated) in &mutations {
        let keys = cell_keys(mutated);
        for (i, (a, b)) in reference.iter().zip(&keys).enumerate() {
            assert_ne!(a, b, "mutating {what} left cell {i}'s key unchanged");
        }
    }
}

// ---- 2. byte identity (and 4. concurrency) ----------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// For randomized specs: a cold cached run is all-miss and
    /// byte-identical to the plain runner; a warm run over a different
    /// thread count is all-hit and still byte-identical.
    #[test]
    fn cached_report_is_byte_identical_cold_and_warm(seed in 0u64..1024) {
        let exp = small_experiment(seed);
        let uncached = run_experiment(&SweepRunner::with_threads(2), &exp)
            .expect("generated spec runs");
        let (dir, store) = temp_store(&format!("prop-{seed}"));
        let (cold, s1) = run_experiment_cached(&SweepRunner::with_threads(1), &exp, &store, 1)
            .expect("cold cached run");
        prop_assert_eq!(s1.hits, 0);
        prop_assert_eq!(s1.misses as usize, exp.cell_count());
        prop_assert_eq!(cold.to_canonical_json(), uncached.to_canonical_json());
        let (warm, s2) = run_experiment_cached(&SweepRunner::with_threads(3), &exp, &store, 2)
            .expect("warm cached run");
        prop_assert!(s2.all_hits(), "warm run missed: {s2:?}");
        prop_assert_eq!(warm.to_canonical_json(), uncached.to_canonical_json());
        drop_store(&dir);
    }
}

/// Two runners racing on the same spec through one shared store
/// produce reports byte-identical to a solo uncached run, and the
/// ledger comes out whole: every line parses, no truncated tail,
/// `verify` is clean.
#[test]
fn racing_runners_share_a_store_without_corruption() {
    let exp = small_experiment(5);
    let reference = run_experiment(&SweepRunner::with_threads(1), &exp)
        .expect("spec runs")
        .to_canonical_json();
    let (dir, store) = temp_store("race");
    let reports: Vec<String> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..2)
            .map(|i| {
                let exp = &exp;
                let store = &store;
                scope.spawn(move || {
                    let (report, _) =
                        run_experiment_cached(&SweepRunner::with_threads(2), exp, store, i)
                            .expect("racing cached run");
                    report.to_canonical_json()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("no panic"))
            .collect()
    });
    for (i, report) in reports.iter().enumerate() {
        assert_eq!(report, &reference, "racer {i} diverged from the solo run");
    }
    let ledger = std::fs::read_to_string(dir.join("ledger.jsonl")).expect("ledger exists");
    let scan = LedgerScan::parse(&ledger);
    assert!(
        scan.bad_lines.is_empty(),
        "garbled lines: {:?}",
        scan.bad_lines
    );
    assert!(!scan.truncated_tail, "ledger ends mid-line");
    let verify = store.verify().expect("verify runs");
    assert!(
        verify.is_clean(),
        "store issues after race: {:?}",
        verify.issues
    );
    drop_store(&dir);
}

// ---- 3. corruption and crash recovery ---------------------------------

/// Paths of every object blob in the store, sorted for determinism.
fn object_paths(dir: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    for shard in std::fs::read_dir(dir.join("objects")).expect("objects dir") {
        let shard = shard.expect("shard entry").path();
        for obj in std::fs::read_dir(&shard).expect("shard dir") {
            out.push(obj.expect("object entry").path());
        }
    }
    out.sort();
    out
}

/// Bit flips, truncation, and deletion of stored blobs each (a) show
/// up in `verify` and (b) degrade the next cached run to a recompute
/// that reproduces the reference bytes exactly — after which the
/// store is whole again.
#[test]
fn corrupted_objects_degrade_to_recompute_not_wrong_bytes() {
    let exp = small_experiment(1);
    let (dir, store) = temp_store("corrupt");
    let (cold, _) =
        run_experiment_cached(&SweepRunner::with_threads(1), &exp, &store, 1).expect("cold run");
    let reference = cold.to_canonical_json();
    let objects = object_paths(&dir);
    assert_eq!(objects.len(), exp.cell_count(), "one blob per cell");

    type Corruption = (&'static str, Box<dyn Fn(&Path)>);
    let corruptions: Vec<Corruption> = vec![
        (
            "bit flip",
            Box::new(|p: &Path| {
                let mut bytes = std::fs::read(p).expect("read blob");
                let mid = bytes.len() / 2;
                bytes[mid] ^= 0x40;
                std::fs::write(p, bytes).expect("write corrupted blob");
            }),
        ),
        (
            "truncation",
            Box::new(|p: &Path| {
                let bytes = std::fs::read(p).expect("read blob");
                std::fs::write(p, &bytes[..bytes.len() / 2]).expect("truncate blob");
            }),
        ),
        (
            "deletion",
            Box::new(|p: &Path| {
                std::fs::remove_file(p).expect("delete blob");
            }),
        ),
    ];
    for (round, (what, corrupt)) in corruptions.iter().enumerate() {
        corrupt(&objects[round % objects.len()]);
        let verify = store.verify().expect("verify runs");
        assert!(!verify.is_clean(), "{what} went undetected by verify");
        let (recovered, stats) = run_experiment_cached(
            &SweepRunner::with_threads(2),
            &exp,
            &store,
            10 + round as u64,
        )
        .expect("recovery run");
        assert!(stats.misses >= 1, "{what}: damaged cell served as a hit");
        assert_eq!(
            recovered.to_canonical_json(),
            reference,
            "{what}: recovery produced different bytes"
        );
        let verify = store.verify().expect("verify runs");
        assert!(
            verify.is_clean(),
            "{what}: recompute did not heal the store: {:?}",
            verify.issues
        );
    }
    drop_store(&dir);
}

/// A crash mid-append leaves a half-written last ledger line; reopen
/// truncates it away, the surviving index still serves every blob,
/// and the warm report is unchanged. A garbled interior line (torn
/// overwrite) is skipped and surfaced, never fatal.
#[test]
fn half_written_and_garbled_ledger_lines_are_survivable() {
    use std::io::Write;
    let exp = small_experiment(2);
    let (dir, store) = temp_store("crashed-ledger");
    let (cold, _) =
        run_experiment_cached(&SweepRunner::with_threads(1), &exp, &store, 1).expect("cold run");
    drop(store);
    let ledger_path = dir.join("ledger.jsonl");
    {
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&ledger_path)
            .expect("open ledger");
        f.write_all(b"{\"key\":\"deadbeef\",\"event\":\"pu")
            .expect("tear the tail");
    }
    let reopened = ResultStore::open(&dir).expect("reopen after crash");
    assert!(reopened.repaired_tail(), "torn tail not repaired");
    let (warm, stats) = run_experiment_cached(&SweepRunner::with_threads(2), &exp, &reopened, 2)
        .expect("warm run after repair");
    assert!(stats.all_hits(), "repair lost committed cells: {stats:?}");
    assert_eq!(warm.to_canonical_json(), cold.to_canonical_json());
    drop(reopened);
    // Garble an interior line in place (same length, so later offsets
    // are untouched — a torn in-place overwrite).
    let text = std::fs::read_to_string(&ledger_path).expect("read ledger");
    let first_line_len = text.find('\n').expect("ledger has lines");
    let garbled = format!("{}{}", "#".repeat(first_line_len), &text[first_line_len..]);
    std::fs::write(&ledger_path, garbled).expect("garble line");
    let reopened = ResultStore::open(&dir).expect("reopen with garbled line");
    let stats = reopened.stats().expect("stats");
    assert!(stats.bad_ledger_lines >= 1, "garbled line not surfaced");
    let (warm, cache) = run_experiment_cached(&SweepRunner::with_threads(1), &exp, &reopened, 3)
        .expect("run with garbled ledger");
    // The garbled line may have been that cell's only put record; all
    // other cells must still hit, and bytes never change.
    assert!(
        cache.misses <= 1,
        "one garbled line lost {} cells",
        cache.misses
    );
    assert_eq!(warm.to_canonical_json(), cold.to_canonical_json());
    drop_store(&dir);
}
