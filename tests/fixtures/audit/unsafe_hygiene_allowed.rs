// Fixture: the same block with a SAFETY comment passes, and an inline
// allow also suppresses the finding.
fn first(xs: &[f32]) -> f32 {
    // SAFETY: callers guarantee xs is non-empty.
    unsafe { *xs.get_unchecked(0) }
}

fn second(xs: &[f32]) -> f32 {
    // audit:allow(unsafe-hygiene): fixture exercising the suppression path
    unsafe { *xs.get_unchecked(1) }
}
