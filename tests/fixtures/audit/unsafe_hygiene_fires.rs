// Fixture: an unsafe block with no adjacent SAFETY comment must trip
// unsafe-hygiene.
fn first(xs: &[f32]) -> f32 {
    unsafe { *xs.get_unchecked(0) }
}
