// Fixture: a justified HashMap under inline allows is suppressed.
// audit:allow(no-randomized-containers): fixture exercising the suppression path
use std::collections::HashMap;

fn count(words: &[&str]) -> usize {
    // audit:allow(no-randomized-containers): never iterated, only probed by key
    let mut seen: HashMap<&str, usize> = HashMap::new();
    for w in words {
        *seen.entry(w).or_insert(0) += 1;
    }
    seen.len()
}
