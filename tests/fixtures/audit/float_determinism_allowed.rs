// Fixture: the same shapes under inline allows are suppressed.
fn shapes(xs: &[f64]) -> f64 {
    // audit:allow(float-determinism): fixture exercising the suppression path
    let fused = xs[0].mul_add(2.0, 1.0);
    let mut ys = xs.to_vec();
    // audit:allow(float-determinism): fixture exercising the suppression path
    ys.sort_by(|a, b| a.partial_cmp(b).unwrap());
    // audit:allow(float-determinism): fixture exercising the suppression path
    let peak = xs.iter().copied().fold(0.0, f64::max);
    fused + ys[0] + peak
}
