// Fixture: HashMap iteration order is seeded per process, so any use
// must trip no-randomized-containers.
use std::collections::HashMap;

fn count(words: &[&str]) -> usize {
    let mut seen: HashMap<&str, usize> = HashMap::new();
    for w in words {
        *seen.entry(w).or_insert(0) += 1;
    }
    seen.len()
}
