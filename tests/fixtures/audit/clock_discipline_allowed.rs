// Fixture: the same clock read under an inline allow is suppressed.
use std::time::Instant;

fn elapsed() -> f64 {
    // audit:allow(clock-discipline): fixture exercising the suppression path
    let t0 = Instant::now();
    t0.elapsed().as_secs_f64()
}
