// Fixture: reading a wall clock outside the allowlisted chokepoint
// must trip clock-discipline.
use std::time::Instant;

fn elapsed() -> f64 {
    let t0 = Instant::now();
    t0.elapsed().as_secs_f64()
}
