// Fixture: an un-annotated environment read must trip env-discipline.
fn threads() -> usize {
    std::env::var("FIXTURE_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
}
