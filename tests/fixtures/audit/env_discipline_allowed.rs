// Fixture: the same read annotated as a strict-parse helper is
// suppressed.
fn threads() -> usize {
    // audit:allow(env-discipline): strict-parse helper, fixture suppression path
    std::env::var("FIXTURE_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
}
