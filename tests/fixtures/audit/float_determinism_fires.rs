// Fixture: all three float-determinism shapes — fused multiply-add,
// partial_cmp().unwrap() ordering, and a zero-seeded max fold.
fn shapes(xs: &[f64]) -> f64 {
    let fused = xs[0].mul_add(2.0, 1.0);
    let mut ys = xs.to_vec();
    ys.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let peak = xs.iter().copied().fold(0.0, f64::max);
    fused + ys[0] + peak
}
