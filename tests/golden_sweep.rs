//! Golden-trace regression tests for the sweep-evaluation harness.
//!
//! Each baseline controller runs a small frozen [`SweepSpec`] and the
//! aggregated metrics must match the checked-in fixtures under
//! `tests/fixtures/` to a tight tolerance. Any change to the simulator,
//! the controllers, the RNG streams, or the metric definitions shows up
//! here as a diff against the golden values — intentional changes must
//! regenerate the fixtures and justify the delta in review:
//!
//! ```text
//! cargo test --test golden_sweep -- --ignored regen_golden
//! ```
//!
//! The `sweep-regression` CI job runs this suite twice, with
//! `MOCC_SWEEP_THREADS=1` and with the default worker count, so any
//! scheduling-dependent nondeterminism fails the build.

use mocc::core::{run_experiment, run_experiment_cached};
use mocc::eval::{
    run_cell, BaselineFactory, CellEvaluator, CellReport, CompetitionSpec, ContenderMix,
    ExperimentSpec, FlowLoad, MoccPrefSpec, PolicySpec, SchemeSpec, SweepCell, SweepReport,
    SweepRunner, SweepSpec, TraceShape,
};
use mocc::netsim::cc::{Aimd, CongestionControl};
use mocc::store::ResultStore;
use std::path::PathBuf;

/// Controllers with golden fixtures.
const CONTROLLERS: &[&str] = &["cubic", "bbr", "vegas", "copa"];

/// Per-metric tolerance. Metrics are canonically rounded to 1e-6, so
/// anything beyond 2 ulps of that rounding is a real behaviour change.
const TOL: f64 = 2e-6;

/// The frozen golden spec: 16 cells spanning both new trace shapes and
/// the on/off cross-traffic load. Do not edit without regenerating
/// every fixture — cell indices and seeds depend on the exact values.
fn golden_spec() -> SweepSpec {
    SweepSpec {
        bandwidth_mbps: vec![6.0, 12.0],
        owd_ms: vec![10, 40],
        queue_pkts: vec![200],
        loss: vec![0.0, 0.02],
        shapes: vec![
            TraceShape::Constant,
            TraceShape::Oscillating {
                steps: 2,
                dwell_s: 2.0,
            },
        ],
        loads: vec![FlowLoad::OnOffCross(1)],
        duration_s: 8,
        mss_bytes: 1500,
        seed: 42,
        agent_mi: true,
    }
}

/// The frozen replay golden: CUBIC over two recorded cellular traces
/// (LTE drive, 5G mmWave blockage) crossed with a greedy flow and an
/// RPC request-response load — 8 cells. Trace paths are relative to
/// the workspace root, where root-package tests run. Do not edit
/// without regenerating the fixture; editing the trace *files*
/// changes their content digests (and so the cache keys) but the
/// golden bytes only through the simulated rates.
fn golden_replay_spec() -> SweepSpec {
    SweepSpec {
        bandwidth_mbps: vec![12.0],
        owd_ms: vec![20, 60],
        queue_pkts: vec![200],
        loss: vec![0.0],
        shapes: vec![
            TraceShape::replay("examples/traces/lte_drive.json"),
            TraceShape::replay("examples/traces/nr5g_blockage.json"),
        ],
        loads: vec![FlowLoad::Steady(1), FlowLoad::RpcCross(1)],
        duration_s: 8,
        mss_bytes: 1500,
        seed: 42,
        agent_mi: true,
    }
}

fn golden_replay_experiment() -> ExperimentSpec {
    ExperimentSpec::from_sweep(
        "replay",
        SchemeSpec::parse("cubic").expect("cubic parses"),
        &golden_replay_spec(),
    )
}

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(format!("golden_{name}.json"))
}

/// The frozen golden competition matrix: baseline duels plus staircase
/// churn over two RTT classes (6 cells). Do not edit without
/// regenerating every competition fixture — cell indices and seeds
/// depend on the exact values.
fn golden_competition_spec() -> CompetitionSpec {
    CompetitionSpec {
        mixes: vec![
            ContenderMix::duel("cubic", "bbr"),
            ContenderMix::duel("vegas", "copa"),
            ContenderMix::staircase("cubic", 3, 4.0),
        ],
        bandwidth_mbps: vec![12.0],
        owd_ms: vec![10, 40],
        queue_pkts: vec![120],
        duration_s: 24,
        mss_bytes: 1500,
        seed: 42,
        agent_mi: true,
        tcp_baseline: "cubic".to_string(),
        fair_jain: 0.9,
        fair_sustain_s: 3,
    }
}

/// The frozen MOCC competition matrix: a mixed-preference MOCC pair
/// and a MOCC-vs-TCP duel, driven through the batched evaluator. The
/// fair-share bar is the paper's qualitative no-starvation claim
/// (Jain ≥ 0.75 sustained), not strict equality — an untrained
/// fixed-seed policy reliably clears it, which keeps the fixture
/// reproducible without shipping a trained model.
fn golden_competition_mocc_spec() -> CompetitionSpec {
    CompetitionSpec {
        mixes: vec![
            ContenderMix::duel("mocc:thr", "mocc:lat"),
            ContenderMix::duel("mocc:bal", "cubic"),
        ],
        bandwidth_mbps: vec![10.0],
        owd_ms: vec![20],
        queue_pkts: vec![120],
        duration_s: 20,
        mss_bytes: 1500,
        seed: 42,
        agent_mi: true,
        tcp_baseline: "cubic".to_string(),
        fair_jain: 0.75,
        fair_sustain_s: 3,
    }
}

/// The policy section behind the MOCC competition fixture: a
/// fixed-seed (untrained) agent, deterministic across platforms via
/// the vendored RNG — entirely described by spec data, so the same
/// fixture is reproducible from a spec file alone.
fn golden_policy() -> PolicySpec {
    PolicySpec {
        path: None,
        seed: 11,
        config: "fast".to_string(),
        preference: MoccPrefSpec::Balanced,
        initial_rate_frac: 0.3,
        batch: 4,
        fast_math: false,
    }
}

/// The golden experiments as declarative documents: what the spec
/// files under `examples/specs/` contain and what every golden run in
/// this suite executes.
fn golden_experiment(controller: &str) -> ExperimentSpec {
    ExperimentSpec::from_sweep(
        controller,
        SchemeSpec::parse(controller).expect("golden controller parses"),
        &golden_spec(),
    )
}

fn golden_competition_experiment() -> ExperimentSpec {
    ExperimentSpec::from_competition("mix", &golden_competition_spec())
}

fn golden_competition_mocc_experiment() -> ExperimentSpec {
    let mut exp =
        ExperimentSpec::from_competition("mocc-competition", &golden_competition_mocc_spec());
    exp.policy = Some(golden_policy());
    exp
}

fn assert_cell_close(got: &CellReport, want: &CellReport, ctrl: &str) {
    assert_eq!(got.index, want.index, "{ctrl}: cell order changed");
    assert_eq!(
        got.seed, want.seed,
        "{ctrl}[{}]: seed derivation changed",
        got.index
    );
    assert_eq!(got.shape, want.shape, "{ctrl}[{}]", got.index);
    assert_eq!(got.load, want.load, "{ctrl}[{}]", got.index);
    let fields: [(&str, f64, f64); 8] = [
        ("goodput_mbps", got.goodput_mbps, want.goodput_mbps),
        ("mean_rtt_ms", got.mean_rtt_ms, want.mean_rtt_ms),
        ("p95_rtt_ms", got.p95_rtt_ms, want.p95_rtt_ms),
        ("loss_rate", got.loss_rate, want.loss_rate),
        ("utilization", got.utilization, want.utilization),
        ("latency_ratio", got.latency_ratio, want.latency_ratio),
        ("jain", got.jain, want.jain),
        ("utility", got.utility, want.utility),
    ];
    for (field, g, w) in fields {
        assert!(
            (g - w).abs() <= TOL,
            "{ctrl}[{}].{field}: got {g}, golden {w} (Δ {:+e}); if intentional, \
             regenerate with `cargo test --test golden_sweep -- --ignored regen_golden`",
            got.index,
            g - w,
        );
    }
}

fn check_golden(name: &str) {
    let path = fixture_path(name);
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing fixture {}: {e}; generate it with \
             `cargo test --test golden_sweep -- --ignored regen_golden`",
            path.display()
        )
    });
    let want = SweepReport::from_json(&text).expect("fixture parses");
    let got = SweepRunner::auto()
        .run(&golden_experiment(name))
        .expect("golden experiment is valid");
    assert_eq!(
        got.cells.len(),
        want.cells.len(),
        "{name}: cell count changed"
    );
    for (g, w) in got.cells.iter().zip(&want.cells) {
        assert_cell_close(g, w, name);
    }
    assert!(
        (got.summary.mean_utility - want.summary.mean_utility).abs() <= TOL,
        "{name}: summary utility drifted: {} vs {}",
        got.summary.mean_utility,
        want.summary.mean_utility
    );
}

#[test]
fn golden_cubic() {
    check_golden("cubic");
}

#[test]
fn golden_bbr() {
    check_golden("bbr");
}

#[test]
fn golden_vegas() {
    check_golden("vegas");
}

#[test]
fn golden_copa() {
    check_golden("copa");
}

/// The redesign is behavior-preserving (acceptance criterion): the
/// unified `SweepRunner::run(&ExperimentSpec)` path reproduces every
/// classic golden fixture byte for byte, spec document in, canonical
/// JSON out.
#[test]
fn golden_fixtures_byte_identical_via_experiment_spec() {
    for name in CONTROLLERS {
        let fixture = std::fs::read_to_string(fixture_path(name)).expect("fixture present");
        let exp = golden_experiment(name);
        let got = SweepRunner::auto()
            .run(&exp)
            .expect("valid golden experiment");
        assert_eq!(
            got.to_canonical_json(),
            fixture,
            "{name}: the ExperimentSpec path drifted from the golden fixture"
        );
        // ... and surviving a JSON round trip changes nothing: what
        // runs from a spec *file* is what runs from code.
        let reparsed = ExperimentSpec::from_json(&exp.to_canonical_json()).unwrap();
        let via_file = run_experiment(&SweepRunner::auto(), &reparsed).unwrap();
        assert_eq!(
            via_file.to_canonical_json(),
            fixture,
            "{name}: JSON round trip drifted"
        );
    }
}

/// The batched execution path cannot disturb the goldens: running the
/// frozen golden spec through `run_cells` with multi-cell chunks
/// must reproduce every committed fixture byte for byte. (The learned
/// policy's batched-inference equivalence is pinned separately by the
/// `act_batch` property test and the `BatchMoccEvaluator` unit tests;
/// this guards the sweep-runner side of the contract.)
#[test]
fn golden_fixtures_byte_identical_via_batched_runner() {
    struct ChunkedBaseline {
        factory: BaselineFactory,
    }
    impl CellEvaluator for ChunkedBaseline {
        fn batch_size(&self) -> usize {
            8
        }
        fn eval_batch(&self, cells: &[SweepCell]) -> Vec<CellReport> {
            cells.iter().map(|c| run_cell(c, &self.factory)).collect()
        }
    }
    for name in CONTROLLERS {
        let fixture = std::fs::read_to_string(fixture_path(name)).expect("fixture present");
        let evaluator = ChunkedBaseline {
            factory: BaselineFactory::new(name),
        };
        let got = SweepRunner::auto().run_cells(&golden_spec(), name, &evaluator);
        assert_eq!(
            got.to_canonical_json(),
            fixture,
            "{name}: batched runner drifted from the golden fixture"
        );
    }
}

/// Golden replay fixture: recorded-trace cells reproduce
/// `golden_replay.json` byte for byte, through the spec-driven path.
/// The `sweep-regression` CI job runs this at 1 thread and at the
/// default worker count.
#[test]
fn golden_replay() {
    let path = fixture_path("replay");
    let fixture = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing fixture {}: {e}; generate it with \
             `cargo test --test golden_sweep -- --ignored regen_golden`",
            path.display()
        )
    });
    let got = run_experiment(&SweepRunner::auto(), &golden_replay_experiment())
        .expect("valid golden replay experiment");
    assert_eq!(
        got.to_canonical_json(),
        fixture,
        "replay sweep drifted from the golden fixture; if intentional, \
         regenerate with `cargo test --test golden_sweep -- --ignored regen_golden`"
    );
}

/// Golden competition fixtures: the frozen contender-mix matrix must
/// reproduce `golden_competition_baselines.json` byte for byte. The
/// `sweep-regression` CI job runs this at 1 thread and at the default
/// worker count, so scheduling can never perturb competition results.
#[test]
fn golden_competition_baselines() {
    let path = fixture_path("competition_baselines");
    let fixture = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing fixture {}: {e}; generate it with \
             `cargo test --test golden_sweep -- --ignored regen_golden`",
            path.display()
        )
    });
    let got = SweepRunner::auto()
        .run(&golden_competition_experiment())
        .expect("valid golden competition experiment");
    assert_eq!(
        got.to_canonical_json(),
        fixture,
        "competition sweep drifted from the golden fixture; if intentional, \
         regenerate with `cargo test --test golden_sweep -- --ignored regen_golden`"
    );
}

/// Golden MOCC competition fixture: mixed-preference MOCC duels driven
/// through the batched evaluator reproduce
/// `golden_competition_mocc.json` byte for byte.
#[test]
fn golden_competition_mocc() {
    let path = fixture_path("competition_mocc");
    let fixture = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing fixture {}: {e}; generate it with \
             `cargo test --test golden_sweep -- --ignored regen_golden`",
            path.display()
        )
    });
    let got = run_experiment(&SweepRunner::auto(), &golden_competition_mocc_experiment())
        .expect("valid golden MOCC competition experiment");
    assert_eq!(
        got.to_canonical_json(),
        fixture,
        "MOCC competition drifted from the golden fixture; if intentional, \
         regenerate with `cargo test --test golden_sweep -- --ignored regen_golden`"
    );
}

/// Acceptance gate for the competition subsystem: the report is
/// byte-identical across 1 vs 4 worker threads and across batched-
/// inference chunk sizes, and the paper's qualitative fairness claims
/// come out finite — the mixed-preference MOCC pair and the
/// MOCC-vs-cubic cell each produce a Jain index, a friendliness ratio,
/// and a time-to-fair-share.
#[test]
fn competition_report_identical_across_threads_and_batches() {
    let mut exp = golden_competition_mocc_experiment();
    exp.policy.as_mut().unwrap().batch = 1;
    let serial = run_experiment(&SweepRunner::with_threads(1), &exp).unwrap();
    exp.policy.as_mut().unwrap().batch = 8;
    let batched = run_experiment(&SweepRunner::with_threads(4), &exp).unwrap();
    assert_eq!(
        serial.to_canonical_json(),
        batched.to_canonical_json(),
        "thread count or batch size changed the competition report"
    );
    for cell in &serial.cells {
        assert!(
            cell.jain > 0.0 && cell.jain <= 1.0,
            "{}: Jain {}",
            cell.load,
            cell.jain
        );
        let friendliness = cell
            .friendliness
            .unwrap_or_else(|| panic!("{}: no friendliness ratio", cell.load));
        assert!(
            friendliness.is_finite() && friendliness > 0.0,
            "{}: friendliness {friendliness}",
            cell.load
        );
        let convergence = cell
            .convergence_s
            .unwrap_or_else(|| panic!("{}: fair share never reached", cell.load));
        assert!(
            convergence.is_finite() && convergence >= 0.0,
            "{}: convergence {convergence}",
            cell.load
        );
    }
}

/// Acceptance gate for the harness itself: a 64-cell matrix sharded
/// over 4 threads produces canonical JSON byte-identical to a
/// single-threaded run of the same spec. The spec is the perf
/// harness's frozen reference sweep — one definition serves both the
/// byte-identity gate and the throughput baseline, so they can never
/// measure different work.
#[test]
fn parallel_sweep_is_byte_identical_to_serial() {
    let spec = mocc_bench::perf::reference_sweep();
    assert_eq!(spec.cell_count(), 64);
    let factory = |cell: &SweepCell| {
        (0..cell.scenario.flows.len())
            .map(|_| Box::new(Aimd::new()) as Box<dyn CongestionControl>)
            .collect::<Vec<_>>()
    };
    let serial = SweepRunner::with_threads(1).run_factory(&spec, "aimd", &factory);
    let quad = SweepRunner::with_threads(4).run_factory(&spec, "aimd", &factory);
    assert_eq!(
        serial.to_canonical_json(),
        quad.to_canonical_json(),
        "parallel execution changed the report"
    );
}

fn example_spec_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("examples/specs")
        .join(format!("{name}.json"))
}

/// The shipped example spec files are exactly the golden experiments:
/// each must parse, validate, and — run from the file alone, through
/// the full spec-driven path — reproduce its committed golden report
/// byte for byte. This is the same check CI's `spec-cli` job performs
/// through the `mocc` binary, pinned here so `cargo test` catches
/// drift without the CLI.
#[test]
fn example_spec_files_reproduce_the_goldens() {
    for (spec_file, fixture) in [
        ("sweep_cubic", "cubic"),
        ("competition_mocc", "competition_mocc"),
        ("sweep_replay", "replay"),
    ] {
        let path = example_spec_path(spec_file);
        let exp = ExperimentSpec::load(&path).unwrap_or_else(|e| {
            panic!(
                "{e}; regenerate spec files with \
                 `cargo test --test golden_sweep -- --ignored regen_golden`"
            )
        });
        exp.validate().expect("shipped spec validates");
        let report = run_experiment(&SweepRunner::auto(), &exp).expect("shipped spec runs");
        let want = std::fs::read_to_string(fixture_path(fixture)).expect("fixture present");
        assert_eq!(
            report.to_canonical_json(),
            want,
            "{spec_file}.json no longer reproduces golden_{fixture}.json"
        );
    }
}

/// The cache acceptance gate (docs/CACHING.md): run from the shipped
/// spec files through the memoized path against a fresh store, the
/// cold run simulates every cell and the warm run simulates **zero**
/// cells — and both reproduce the committed golden byte for byte.
/// This is the library-level twin of CI's `spec-cli` cached-run
/// check through the `mocc` binary.
#[test]
fn cached_example_specs_reproduce_goldens_with_zero_cells_simulated() {
    let dir = std::env::temp_dir().join(format!("mocc-golden-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = ResultStore::open(&dir).expect("open store");
    for (spec_file, fixture) in [
        ("sweep_cubic", "cubic"),
        ("competition_mocc", "competition_mocc"),
        ("sweep_replay", "replay"),
    ] {
        let exp = ExperimentSpec::load(&example_spec_path(spec_file)).expect("spec loads");
        let want = std::fs::read_to_string(fixture_path(fixture)).expect("fixture present");
        let (cold, stats) =
            run_experiment_cached(&SweepRunner::auto(), &exp, &store, 1).expect("cold cached run");
        assert_eq!(stats.hits, 0, "{spec_file}: cold run hit a fresh store");
        assert_eq!(stats.misses as usize, exp.cell_count());
        assert_eq!(
            cold.to_canonical_json(),
            want,
            "{spec_file}: cold cached run drifted from golden_{fixture}.json"
        );
        let (warm, stats) =
            run_experiment_cached(&SweepRunner::auto(), &exp, &store, 2).expect("warm cached run");
        assert!(
            stats.all_hits(),
            "{spec_file}: warm run simulated {} cells",
            stats.misses
        );
        assert_eq!(
            warm.to_canonical_json(),
            want,
            "{spec_file}: warm cached run drifted from golden_{fixture}.json"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Regenerates every golden fixture — and the example spec files that
/// reproduce them — in place. Ignored by default; run explicitly after
/// an intentional behaviour change:
///
/// ```text
/// cargo test --test golden_sweep -- --ignored regen_golden
/// ```
///
/// Regeneration deliberately never reads a result store: every
/// fixture below comes from an uncached simulation, so a stale cache
/// can never leak old cells into new goldens. Before anything is
/// written, a cached cross-check against a **fresh** temporary store
/// must agree with the uncached bytes (and be all-miss, proving no
/// pre-existing store was consulted).
#[test]
#[ignore = "writes tests/fixtures/golden_*.json; run explicitly to regenerate"]
fn regen_golden() {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    std::fs::create_dir_all(&dir).expect("create fixture dir");
    let runner = SweepRunner::auto();
    let mut regenerated: Vec<(PathBuf, ExperimentSpec, String)> = Vec::new();
    for name in CONTROLLERS {
        let report = runner.run(&golden_experiment(name)).expect("valid");
        regenerated.push((
            fixture_path(name),
            golden_experiment(name),
            report.to_canonical_json(),
        ));
    }
    let competition = runner.run(&golden_competition_experiment()).expect("valid");
    regenerated.push((
        fixture_path("competition_baselines"),
        golden_competition_experiment(),
        competition.to_canonical_json(),
    ));
    let mocc = run_experiment(&runner, &golden_competition_mocc_experiment()).expect("valid");
    regenerated.push((
        fixture_path("competition_mocc"),
        golden_competition_mocc_experiment(),
        mocc.to_canonical_json(),
    ));
    let replay = run_experiment(&runner, &golden_replay_experiment()).expect("valid");
    regenerated.push((
        fixture_path("replay"),
        golden_replay_experiment(),
        replay.to_canonical_json(),
    ));
    let cross_dir =
        std::env::temp_dir().join(format!("mocc-regen-crosscheck-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cross_dir);
    let cross_store = ResultStore::open(&cross_dir).expect("open cross-check store");
    for (path, exp, json) in &regenerated {
        let (cached, stats) =
            run_experiment_cached(&runner, exp, &cross_store, 1).expect("cross-check runs");
        assert_eq!(
            stats.hits,
            0,
            "{}: regen cross-check was served from a cache",
            path.display()
        );
        assert_eq!(
            &cached.to_canonical_json(),
            json,
            "{}: cached execution disagrees with the uncached fixture — \
             refusing to regenerate",
            path.display()
        );
    }
    let _ = std::fs::remove_dir_all(&cross_dir);
    for (path, _, json) in &regenerated {
        std::fs::write(path, json).expect("write fixture");
        eprintln!("regenerated {}", path.display());
    }
    // The example spec files stay in lockstep with the frozen golden
    // experiments, so `mocc run examples/specs/<f>.json` reproduces a
    // committed golden with no Rust involved.
    let specs_dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("examples/specs");
    std::fs::create_dir_all(&specs_dir).expect("create specs dir");
    for (file, exp) in [
        ("sweep_cubic", golden_experiment("cubic")),
        ("competition_mocc", golden_competition_mocc_experiment()),
        ("sweep_replay", golden_replay_experiment()),
    ] {
        let path = example_spec_path(file);
        std::fs::write(&path, exp.to_canonical_json()).expect("write spec file");
        eprintln!("regenerated {}", path.display());
    }
}
