//! Golden-trace regression tests for the sweep-evaluation harness.
//!
//! Each baseline controller runs a small frozen [`SweepSpec`] and the
//! aggregated metrics must match the checked-in fixtures under
//! `tests/fixtures/` to a tight tolerance. Any change to the simulator,
//! the controllers, the RNG streams, or the metric definitions shows up
//! here as a diff against the golden values — intentional changes must
//! regenerate the fixtures and justify the delta in review:
//!
//! ```text
//! cargo test --test golden_sweep -- --ignored regen_golden
//! ```
//!
//! The `sweep-regression` CI job runs this suite twice, with
//! `MOCC_SWEEP_THREADS=1` and with the default worker count, so any
//! scheduling-dependent nondeterminism fails the build.

use mocc::core::{BatchMoccEvaluator, MoccAgent, MoccConfig, Preference};
use mocc::eval::{
    run_cell, BaselineContenders, BaselineFactory, CellEvaluator, CellReport, CompetitionSpec,
    ContenderMix, FlowLoad, SweepCell, SweepReport, SweepRunner, SweepSpec, TraceShape,
};
use mocc::netsim::cc::{Aimd, CongestionControl};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::PathBuf;

/// Controllers with golden fixtures.
const CONTROLLERS: &[&str] = &["cubic", "bbr", "vegas", "copa"];

/// Per-metric tolerance. Metrics are canonically rounded to 1e-6, so
/// anything beyond 2 ulps of that rounding is a real behaviour change.
const TOL: f64 = 2e-6;

/// The frozen golden spec: 16 cells spanning both new trace shapes and
/// the on/off cross-traffic load. Do not edit without regenerating
/// every fixture — cell indices and seeds depend on the exact values.
fn golden_spec() -> SweepSpec {
    SweepSpec {
        bandwidth_mbps: vec![6.0, 12.0],
        owd_ms: vec![10, 40],
        queue_pkts: vec![200],
        loss: vec![0.0, 0.02],
        shapes: vec![
            TraceShape::Constant,
            TraceShape::Oscillating {
                steps: 2,
                dwell_s: 2.0,
            },
        ],
        loads: vec![FlowLoad::OnOffCross(1)],
        duration_s: 8,
        mss_bytes: 1500,
        seed: 42,
        agent_mi: true,
    }
}

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(format!("golden_{name}.json"))
}

/// The frozen golden competition matrix: baseline duels plus staircase
/// churn over two RTT classes (6 cells). Do not edit without
/// regenerating every competition fixture — cell indices and seeds
/// depend on the exact values.
fn golden_competition_spec() -> CompetitionSpec {
    CompetitionSpec {
        mixes: vec![
            ContenderMix::duel("cubic", "bbr"),
            ContenderMix::duel("vegas", "copa"),
            ContenderMix::staircase("cubic", 3, 4.0),
        ],
        bandwidth_mbps: vec![12.0],
        owd_ms: vec![10, 40],
        queue_pkts: vec![120],
        duration_s: 24,
        mss_bytes: 1500,
        seed: 42,
        agent_mi: true,
        tcp_baseline: "cubic".to_string(),
        fair_jain: 0.9,
        fair_sustain_s: 3,
    }
}

/// The frozen MOCC competition matrix: a mixed-preference MOCC pair
/// and a MOCC-vs-TCP duel, driven through the batched evaluator. The
/// fair-share bar is the paper's qualitative no-starvation claim
/// (Jain ≥ 0.75 sustained), not strict equality — an untrained
/// fixed-seed policy reliably clears it, which keeps the fixture
/// reproducible without shipping a trained model.
fn golden_competition_mocc_spec() -> CompetitionSpec {
    CompetitionSpec {
        mixes: vec![
            ContenderMix::duel("mocc:thr", "mocc:lat"),
            ContenderMix::duel("mocc:bal", "cubic"),
        ],
        bandwidth_mbps: vec![10.0],
        owd_ms: vec![20],
        queue_pkts: vec![120],
        duration_s: 20,
        mss_bytes: 1500,
        seed: 42,
        agent_mi: true,
        tcp_baseline: "cubic".to_string(),
        fair_jain: 0.75,
        fair_sustain_s: 3,
    }
}

/// The fixed-seed (untrained) agent behind the MOCC competition
/// fixture: deterministic across platforms via the vendored RNG.
fn golden_mocc_evaluator() -> BatchMoccEvaluator {
    let mut rng = StdRng::seed_from_u64(11);
    let agent = MoccAgent::new(MoccConfig::fast(), &mut rng);
    BatchMoccEvaluator::new(&agent, Preference::balanced(), 0.3)
}

fn assert_cell_close(got: &CellReport, want: &CellReport, ctrl: &str) {
    assert_eq!(got.index, want.index, "{ctrl}: cell order changed");
    assert_eq!(
        got.seed, want.seed,
        "{ctrl}[{}]: seed derivation changed",
        got.index
    );
    assert_eq!(got.shape, want.shape, "{ctrl}[{}]", got.index);
    assert_eq!(got.load, want.load, "{ctrl}[{}]", got.index);
    let fields: [(&str, f64, f64); 8] = [
        ("goodput_mbps", got.goodput_mbps, want.goodput_mbps),
        ("mean_rtt_ms", got.mean_rtt_ms, want.mean_rtt_ms),
        ("p95_rtt_ms", got.p95_rtt_ms, want.p95_rtt_ms),
        ("loss_rate", got.loss_rate, want.loss_rate),
        ("utilization", got.utilization, want.utilization),
        ("latency_ratio", got.latency_ratio, want.latency_ratio),
        ("jain", got.jain, want.jain),
        ("utility", got.utility, want.utility),
    ];
    for (field, g, w) in fields {
        assert!(
            (g - w).abs() <= TOL,
            "{ctrl}[{}].{field}: got {g}, golden {w} (Δ {:+e}); if intentional, \
             regenerate with `cargo test --test golden_sweep -- --ignored regen_golden`",
            got.index,
            g - w,
        );
    }
}

fn check_golden(name: &str) {
    let path = fixture_path(name);
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing fixture {}: {e}; generate it with \
             `cargo test --test golden_sweep -- --ignored regen_golden`",
            path.display()
        )
    });
    let want = SweepReport::from_json(&text).expect("fixture parses");
    let got = SweepRunner::auto().run_baseline(&golden_spec(), name);
    assert_eq!(
        got.cells.len(),
        want.cells.len(),
        "{name}: cell count changed"
    );
    for (g, w) in got.cells.iter().zip(&want.cells) {
        assert_cell_close(g, w, name);
    }
    assert!(
        (got.summary.mean_utility - want.summary.mean_utility).abs() <= TOL,
        "{name}: summary utility drifted: {} vs {}",
        got.summary.mean_utility,
        want.summary.mean_utility
    );
}

#[test]
fn golden_cubic() {
    check_golden("cubic");
}

#[test]
fn golden_bbr() {
    check_golden("bbr");
}

#[test]
fn golden_vegas() {
    check_golden("vegas");
}

#[test]
fn golden_copa() {
    check_golden("copa");
}

/// The batched execution path cannot disturb the goldens: running the
/// frozen golden spec through `run_evaluator` with multi-cell chunks
/// must reproduce every committed fixture byte for byte. (The learned
/// policy's batched-inference equivalence is pinned separately by the
/// `act_batch` property test and the `BatchMoccEvaluator` unit tests;
/// this guards the sweep-runner side of the contract.)
#[test]
fn golden_fixtures_byte_identical_via_batched_runner() {
    struct ChunkedBaseline {
        factory: BaselineFactory,
    }
    impl CellEvaluator for ChunkedBaseline {
        fn batch_size(&self) -> usize {
            8
        }
        fn eval_batch(&self, cells: &[SweepCell]) -> Vec<CellReport> {
            cells.iter().map(|c| run_cell(c, &self.factory)).collect()
        }
    }
    for name in CONTROLLERS {
        let fixture = std::fs::read_to_string(fixture_path(name)).expect("fixture present");
        let evaluator = ChunkedBaseline {
            factory: BaselineFactory::new(name),
        };
        let got = SweepRunner::auto().run_evaluator(&golden_spec(), name, &evaluator);
        assert_eq!(
            got.to_canonical_json(),
            fixture,
            "{name}: batched runner drifted from the golden fixture"
        );
    }
}

/// Golden competition fixtures: the frozen contender-mix matrix must
/// reproduce `golden_competition_baselines.json` byte for byte. The
/// `sweep-regression` CI job runs this at 1 thread and at the default
/// worker count, so scheduling can never perturb competition results.
#[test]
fn golden_competition_baselines() {
    let path = fixture_path("competition_baselines");
    let fixture = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing fixture {}: {e}; generate it with \
             `cargo test --test golden_sweep -- --ignored regen_golden`",
            path.display()
        )
    });
    let got =
        SweepRunner::auto().run_competition(&golden_competition_spec(), "mix", &BaselineContenders);
    assert_eq!(
        got.to_canonical_json(),
        fixture,
        "competition sweep drifted from the golden fixture; if intentional, \
         regenerate with `cargo test --test golden_sweep -- --ignored regen_golden`"
    );
}

/// Golden MOCC competition fixture: mixed-preference MOCC duels driven
/// through the batched evaluator reproduce
/// `golden_competition_mocc.json` byte for byte.
#[test]
fn golden_competition_mocc() {
    let path = fixture_path("competition_mocc");
    let fixture = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing fixture {}: {e}; generate it with \
             `cargo test --test golden_sweep -- --ignored regen_golden`",
            path.display()
        )
    });
    let got = SweepRunner::auto().run_competition_evaluator(
        &golden_competition_mocc_spec(),
        "mocc-competition",
        &golden_mocc_evaluator().with_batch_size(4),
    );
    assert_eq!(
        got.to_canonical_json(),
        fixture,
        "MOCC competition drifted from the golden fixture; if intentional, \
         regenerate with `cargo test --test golden_sweep -- --ignored regen_golden`"
    );
}

/// Acceptance gate for the competition subsystem: the report is
/// byte-identical across 1 vs 4 worker threads and across batched-
/// inference chunk sizes, and the paper's qualitative fairness claims
/// come out finite — the mixed-preference MOCC pair and the
/// MOCC-vs-cubic cell each produce a Jain index, a friendliness ratio,
/// and a time-to-fair-share.
#[test]
fn competition_report_identical_across_threads_and_batches() {
    let spec = golden_competition_mocc_spec();
    let serial = SweepRunner::with_threads(1).run_competition_evaluator(
        &spec,
        "mocc-competition",
        &golden_mocc_evaluator().with_batch_size(1),
    );
    let batched = SweepRunner::with_threads(4).run_competition_evaluator(
        &spec,
        "mocc-competition",
        &golden_mocc_evaluator().with_batch_size(8),
    );
    assert_eq!(
        serial.to_canonical_json(),
        batched.to_canonical_json(),
        "thread count or batch size changed the competition report"
    );
    for cell in &serial.cells {
        assert!(
            cell.jain > 0.0 && cell.jain <= 1.0,
            "{}: Jain {}",
            cell.load,
            cell.jain
        );
        let friendliness = cell
            .friendliness
            .unwrap_or_else(|| panic!("{}: no friendliness ratio", cell.load));
        assert!(
            friendliness.is_finite() && friendliness > 0.0,
            "{}: friendliness {friendliness}",
            cell.load
        );
        let convergence = cell
            .convergence_s
            .unwrap_or_else(|| panic!("{}: fair share never reached", cell.load));
        assert!(
            convergence.is_finite() && convergence >= 0.0,
            "{}: convergence {convergence}",
            cell.load
        );
    }
}

/// Acceptance gate for the harness itself: a 64-cell matrix sharded
/// over 4 threads produces canonical JSON byte-identical to a
/// single-threaded run of the same spec. The spec is the perf
/// harness's frozen reference sweep — one definition serves both the
/// byte-identity gate and the throughput baseline, so they can never
/// measure different work.
#[test]
fn parallel_sweep_is_byte_identical_to_serial() {
    let spec = mocc_bench::perf::reference_sweep();
    assert_eq!(spec.cell_count(), 64);
    let factory = |cell: &SweepCell| {
        (0..cell.scenario.flows.len())
            .map(|_| Box::new(Aimd::new()) as Box<dyn CongestionControl>)
            .collect::<Vec<_>>()
    };
    let serial = SweepRunner::with_threads(1).run(&spec, "aimd", &factory);
    let quad = SweepRunner::with_threads(4).run(&spec, "aimd", &factory);
    assert_eq!(
        serial.to_canonical_json(),
        quad.to_canonical_json(),
        "parallel execution changed the report"
    );
}

/// Regenerates every golden fixture in place. Ignored by default; run
/// explicitly after an intentional behaviour change:
///
/// ```text
/// cargo test --test golden_sweep -- --ignored regen_golden
/// ```
#[test]
#[ignore = "writes tests/fixtures/golden_*.json; run explicitly to regenerate"]
fn regen_golden() {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    std::fs::create_dir_all(&dir).expect("create fixture dir");
    for name in CONTROLLERS {
        let report = SweepRunner::auto().run_baseline(&golden_spec(), name);
        let path = fixture_path(name);
        std::fs::write(&path, report.to_canonical_json()).expect("write fixture");
        eprintln!("regenerated {}", path.display());
    }
    let competition =
        SweepRunner::auto().run_competition(&golden_competition_spec(), "mix", &BaselineContenders);
    let path = fixture_path("competition_baselines");
    std::fs::write(&path, competition.to_canonical_json()).expect("write fixture");
    eprintln!("regenerated {}", path.display());
    let mocc = SweepRunner::auto().run_competition_evaluator(
        &golden_competition_mocc_spec(),
        "mocc-competition",
        &golden_mocc_evaluator().with_batch_size(4),
    );
    let path = fixture_path("competition_mocc");
    std::fs::write(&path, mocc.to_canonical_json()).expect("write fixture");
    eprintln!("regenerated {}", path.display());
}
