//! Checkpoint/resume determinism for the `TrainSpec` pipeline, end to
//! end through the umbrella crate: a run killed at iteration k and
//! resumed from its checkpoint must produce a final model artifact
//! byte-identical to the uninterrupted run's, a torn current checkpoint
//! must degrade to the previous snapshot without losing that guarantee,
//! and a zoo entry must be loadable and runnable as a registry scheme.

use mocc::core::{
    load_checkpoint, run_experiment_in, save_trained, train_spec, zoo_registry, TrainOptions,
    TrainSpec,
};
use mocc::eval::{ExperimentSpec, SweepRunner, SweepSpec};
use std::path::PathBuf;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mocc-resume-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The `train_smoke.json` budget: 9 schedule iterations, two lockstep
/// envs, checkpoint every 2 — small enough that every test replays the
/// full schedule several times.
fn tiny_spec(name: &str) -> TrainSpec {
    TrainSpec {
        name: name.to_string(),
        seed: 11,
        config: "fast".to_string(),
        omega_step: Some(4),
        boot_iters: Some(2),
        traverse_iters: Some(1),
        traverse_cycles: Some(1),
        rollout_steps: Some(60),
        episode_mis: Some(40),
        batch_envs: 2,
        checkpoint_every: 2,
        eval_episodes: 1,
        ..TrainSpec::default()
    }
}

/// Kill at iteration k, resume, and the final model is byte-identical
/// to the uninterrupted run — the tentpole determinism guarantee.
#[test]
fn resume_after_kill_is_byte_identical() {
    let spec = tiny_spec("resume-kill");
    let total = spec.schedule_len().unwrap();
    assert!(total >= 6, "budget too small to interrupt meaningfully");

    // Uninterrupted reference run.
    let full = train_spec(&spec, &TrainOptions::default()).unwrap();
    assert!(full.completed);
    assert_eq!(full.outcome.iterations, total);

    // The same spec, killed at iteration 4 (checkpointing as it goes)...
    let ck_dir = tmp_dir("kill-ck");
    let killed = train_spec(
        &spec,
        &TrainOptions {
            checkpoint_dir: Some(ck_dir.clone()),
            max_iters: Some(4),
            ..TrainOptions::default()
        },
    )
    .unwrap();
    assert!(!killed.completed, "max_iters must cut the run short");
    assert_eq!(load_checkpoint(&ck_dir).unwrap().iteration, 4);

    // ...then resumed from the checkpoint directory.
    let resumed = train_spec(
        &spec,
        &TrainOptions {
            checkpoint_dir: Some(ck_dir.clone()),
            resume_from: Some(ck_dir.clone()),
            ..TrainOptions::default()
        },
    )
    .unwrap();
    assert!(resumed.completed);
    assert_eq!(resumed.outcome.iterations, total);
    assert_eq!(
        resumed.outcome.curve, full.outcome.curve,
        "resumed training curve must replay draw for draw"
    );
    assert_eq!(
        resumed.agent.to_json(),
        full.agent.to_json(),
        "resumed final model must be byte-identical"
    );

    // The determinism survives serialization into the zoo: both
    // artifacts are the same bytes on disk.
    let (zoo_a, zoo_b) = (tmp_dir("kill-zoo-a"), tmp_dir("kill-zoo-b"));
    let path_a = save_trained(&zoo_a, &spec, &full.agent, full.outcome.iterations).unwrap();
    let path_b = save_trained(&zoo_b, &spec, &resumed.agent, resumed.outcome.iterations).unwrap();
    assert_eq!(
        std::fs::read(&path_a).unwrap(),
        std::fs::read(&path_b).unwrap()
    );
    for d in [ck_dir, zoo_a, zoo_b] {
        let _ = std::fs::remove_dir_all(&d);
    }
}

/// Tearing the current checkpoint mid-write degrades resume to the
/// previous snapshot — replaying more iterations, but landing on the
/// identical final artifact.
#[test]
fn torn_checkpoint_degrades_to_previous_snapshot() {
    let spec = tiny_spec("resume-torn");
    let total = spec.schedule_len().unwrap();
    let full = train_spec(&spec, &TrainOptions::default()).unwrap();

    // checkpoint_every = 2 and max_iters = 6 leaves checkpoint.json at
    // iteration 6 with checkpoint.prev.json at 4.
    let ck_dir = tmp_dir("torn-ck");
    train_spec(
        &spec,
        &TrainOptions {
            checkpoint_dir: Some(ck_dir.clone()),
            max_iters: Some(6),
            ..TrainOptions::default()
        },
    )
    .unwrap();
    assert_eq!(load_checkpoint(&ck_dir).unwrap().iteration, 6);

    // Simulate a torn write of the current snapshot.
    let main = ck_dir.join("checkpoint.json");
    let mut text = std::fs::read_to_string(&main).unwrap();
    text.truncate(text.len() / 2);
    std::fs::write(&main, text).unwrap();
    let fallback = load_checkpoint(&ck_dir).unwrap();
    assert_eq!(fallback.iteration, 4, "torn current must fall back to prev");

    let resumed = train_spec(
        &spec,
        &TrainOptions {
            resume_from: Some(ck_dir.clone()),
            ..TrainOptions::default()
        },
    )
    .unwrap();
    assert!(resumed.completed);
    assert_eq!(resumed.outcome.iterations, total);
    assert_eq!(
        resumed.agent.to_json(),
        full.agent.to_json(),
        "resume from the previous snapshot must still converge to the \
         identical artifact"
    );
    let _ = std::fs::remove_dir_all(&ck_dir);
}

/// A trained zoo model registers as a scheme and drives a spec-file
/// experiment through the custom-registry entry point.
#[test]
fn zoo_model_runs_as_registry_scheme() {
    let spec = tiny_spec("resume-zoo");
    let run = train_spec(&spec, &TrainOptions::default()).unwrap();
    let zoo = tmp_dir("zoo-scheme");
    save_trained(&zoo, &spec, &run.agent, run.outcome.iterations).unwrap();

    let reg = zoo_registry(&zoo).unwrap();
    assert!(reg.names().contains(&"resume-zoo"));

    let mut matrix = SweepSpec::single_cell();
    matrix.bandwidth_mbps = vec![4.0];
    matrix.duration_s = 8;
    let exp = ExperimentSpec::from_sweep("zoo-deploy", reg.parse("resume-zoo").unwrap(), &matrix);
    let report = run_experiment_in(&SweepRunner::with_threads(1), &exp, &reg).unwrap();
    assert_eq!(report.cells.len(), 1);
    let cell = &report.cells[0];
    assert!(
        cell.utilization.is_finite() && cell.utilization > 0.0,
        "zoo scheme must move traffic (utilization {})",
        cell.utilization
    );
    let _ = std::fs::remove_dir_all(&zoo);
}

/// Trains the cross-process spec, writing a mid-run checkpoint and the
/// final zoo artifact under `out`. Returns the artifact path.
fn produce_artifacts(out: &std::path::Path) -> PathBuf {
    let spec = tiny_spec("resume-xproc");
    train_spec(
        &spec,
        &TrainOptions {
            checkpoint_dir: Some(out.join("ck")),
            max_iters: Some(4),
            ..TrainOptions::default()
        },
    )
    .unwrap();
    let run = train_spec(&spec, &TrainOptions::default()).unwrap();
    save_trained(&out.join("zoo"), &spec, &run.agent, run.outcome.iterations).unwrap()
}

/// Checkpoint and model artifacts are byte-identical across *processes*,
/// not just across runs in one process: a child re-invocation of this
/// test binary produces the same bytes the parent does. This is the
/// guard against process-randomized state sneaking into artifacts (the
/// failure mode of hash-map-keyed optimizer moments, which seeded
/// iteration order per process).
#[test]
fn checkpoint_bytes_identical_across_processes() {
    if let Ok(out) = std::env::var("MOCC_TRAIN_CHILD") {
        produce_artifacts(&PathBuf::from(out));
        return;
    }

    let parent_out = tmp_dir("xproc-parent");
    let artifact = produce_artifacts(&parent_out);

    let child_out = tmp_dir("xproc-child");
    let status = std::process::Command::new(std::env::current_exe().unwrap())
        .args(["checkpoint_bytes_identical_across_processes", "--exact"])
        .env("MOCC_TRAIN_CHILD", &child_out)
        .status()
        .unwrap();
    assert!(status.success(), "child training process failed");

    let ck_rel = "ck/checkpoint.json";
    assert_eq!(
        std::fs::read(parent_out.join(ck_rel)).unwrap(),
        std::fs::read(child_out.join(ck_rel)).unwrap(),
        "checkpoint bytes must not depend on the producing process"
    );
    let artifact_rel = artifact.strip_prefix(&parent_out).unwrap();
    assert_eq!(
        std::fs::read(&artifact).unwrap(),
        std::fs::read(child_out.join(artifact_rel)).unwrap(),
        "model artifact bytes must not depend on the producing process"
    );
    for d in [parent_out, child_out] {
        let _ = std::fs::remove_dir_all(&d);
    }
}

/// Dropping `resume_from` into a foreign spec's checkpoint directory is
/// refused (digest mismatch), so a zoo run can't silently continue the
/// wrong training.
#[test]
fn resume_refuses_checkpoint_from_different_spec() {
    let spec_a = tiny_spec("resume-a");
    let ck_dir = tmp_dir("foreign-ck");
    train_spec(
        &spec_a,
        &TrainOptions {
            checkpoint_dir: Some(ck_dir.clone()),
            max_iters: Some(2),
            ..TrainOptions::default()
        },
    )
    .unwrap();

    let mut spec_b = tiny_spec("resume-b");
    spec_b.seed = 12;
    let err = match train_spec(
        &spec_b,
        &TrainOptions {
            resume_from: Some(ck_dir.clone()),
            ..TrainOptions::default()
        },
    ) {
        Err(e) => e,
        Ok(_) => panic!("resume against a foreign digest must fail"),
    };
    assert!(
        err.to_string().contains("digest"),
        "error must name the digest mismatch: {err}"
    );
    let _ = std::fs::remove_dir_all(&ck_dir);
}
