//! End-to-end integration tests spanning the whole workspace:
//! simulator + baselines + MOCC training + deployment adapters.

use mocc::cc;
use mocc::core::{MoccAgent, MoccCc, MoccConfig, MoccLib, NetStatus, Preference};
use mocc::netsim::{Scenario, ScenarioRange, Simulator};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn tiny_cfg() -> MoccConfig {
    MoccConfig {
        omega_step: 4, // ω = 3
        boot_iters: 10,
        traverse_iters: 1,
        traverse_cycles: 1,
        rollout_steps: 80,
        episode_mis: 80,
        ..MoccConfig::default()
    }
}

/// The full offline pipeline — declared as a TrainSpec, the document
/// `mocc train` executes — runs end to end and produces a model whose
/// deployed behaviour achieves real goodput.
#[test]
fn offline_pipeline_to_deployment() {
    // Training at this tiny budget is high-variance; the seed is
    // calibrated against the vendored RNG stream (vendor/rand) to give
    // a wide margin over the utilization threshold below.
    let spec = mocc::core::TrainSpec {
        name: "e2e-pipeline".to_string(),
        seed: 13,
        config: "default".to_string(),
        omega_step: Some(4), // ω = 3
        boot_iters: Some(10),
        traverse_iters: Some(1),
        traverse_cycles: Some(1),
        rollout_steps: Some(80),
        episode_mis: Some(80),
        batch_envs: 1,
        ..mocc::core::TrainSpec::default()
    };
    let run = mocc::core::train_spec(&spec, &mocc::core::TrainOptions::default())
        .expect("e2e spec is valid");
    assert!(run.completed);
    assert!(run.outcome.iterations > 0);
    assert_eq!(run.outcome.curve.len(), run.outcome.iterations);

    let sc = Scenario::single(4e6, 20, 500, 0.0, 20);
    let cc = MoccCc::new(&run.agent, Preference::throughput(), 1e6);
    let res = Simulator::new(sc, vec![Box::new(cc)]).run();
    assert!(
        res.flows[0].utilization > 0.1,
        "trained MOCC must move real traffic (got {})",
        res.flows[0].utilization
    );
}

/// Training visibly improves the agent against an untrained twin.
#[test]
fn training_beats_untrained() {
    let mut rng = StdRng::seed_from_u64(1);
    let cfg = tiny_cfg();
    let untrained = MoccAgent::new(cfg, &mut rng);
    let mut trained = untrained.clone();
    let range = ScenarioRange {
        bandwidth_bps: (3e6, 5e6),
        owd_ms: (15, 25),
        queue_pkts: (300, 800),
        loss: (0.0, 0.0),
    };
    for i in 0..40 {
        let _ =
            mocc::core::train_iteration(&mut trained, Preference::throughput(), range, i, &mut rng);
    }
    let sc = Scenario::single(4e6, 20, 500, 0.0, 60);
    let eval = |a: &MoccAgent| mocc::core::evaluate(a, Preference::throughput(), sc.clone(), 1);
    let (before, after) = (eval(&untrained), eval(&trained));
    assert!(
        after > before - 0.02,
        "training regressed: {before} -> {after}"
    );
}

/// MOCC coexists with every baseline on a shared bottleneck without
/// starving or being starved to zero.
#[test]
fn mocc_against_every_baseline() {
    let mut rng = StdRng::seed_from_u64(2);
    let agent = MoccAgent::new(tiny_cfg(), &mut rng);
    for name in cc::BASELINES {
        let sc = Scenario::dumbbell(10e6, 10, 100, 2, 0.0, 20);
        let res = Simulator::new(
            sc,
            vec![
                Box::new(MoccCc::new(&agent, Preference::throughput(), 1e6)),
                cc::by_name(name).unwrap(),
            ],
        )
        .run();
        assert!(res.flows[0].total_acked > 0, "mocc starved by {name}");
        assert!(res.flows[1].total_acked > 0, "{name} starved by mocc");
    }
}

/// The §5 library facade drives rates consistently with the adapter.
#[test]
fn library_facade_roundtrip() {
    let mut rng = StdRng::seed_from_u64(3);
    let agent = MoccAgent::new(tiny_cfg(), &mut rng);
    let mut lib = MoccLib::new(&agent, 2e6);
    lib.register(Preference::latency());
    let mut rates = Vec::new();
    for _ in 0..10 {
        lib.report_status(NetStatus {
            send_ratio: 1.0,
            latency_ratio: 1.05,
            latency_gradient: 0.0,
        })
        .unwrap();
        rates.push(lib.get_sending_rate().unwrap());
    }
    // Rates are positive, finite, and change by at most Eq. 1's bound.
    for w in rates.windows(2) {
        assert!(w[1] > 0.0 && w[1].is_finite());
        let step = w[1] / w[0];
        assert!(step < 1.06 && step > 0.94, "per-interval step {step}");
    }
}

/// Serialization round-trips through disk and produces identical
/// deployment behaviour (model sharing, §7).
#[test]
fn model_roundtrip_identical_behaviour() {
    let mut rng = StdRng::seed_from_u64(4);
    let agent = MoccAgent::new(tiny_cfg(), &mut rng);
    let path = std::env::temp_dir().join("mocc-e2e-model.json");
    agent.save(&path).unwrap();
    let loaded = MoccAgent::load(&path).unwrap();
    let _ = std::fs::remove_file(&path);

    let run = |a: &MoccAgent| {
        let sc = Scenario::single(5e6, 20, 400, 0.0, 10);
        let res = Simulator::new(
            sc,
            vec![Box::new(MoccCc::new(a, Preference::balanced(), 1e6))],
        )
        .run();
        (res.flows[0].total_sent, res.flows[0].total_acked)
    };
    assert_eq!(run(&agent), run(&loaded));
}
