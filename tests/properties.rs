//! Property-based integration tests over the workspace invariants.

use mocc::core::{landmark_count, landmarks, Preference};
use mocc::netsim::cc::FixedRate;
use mocc::netsim::metrics::jain_index;
use mocc::netsim::{Scenario, Simulator};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The simulator conserves packets: acked + lost never exceeds
    /// sent, for any link parameters and sending rate.
    #[test]
    fn packets_conserved(
        bw_mbps in 1.0f64..40.0,
        owd_ms in 5u64..100,
        queue in 10usize..2000,
        loss in 0.0f64..0.2,
        rate_mbps in 0.5f64..60.0,
    ) {
        let sc = Scenario::single(bw_mbps * 1e6, owd_ms, queue, loss, 10);
        let res = Simulator::new(sc, vec![Box::new(FixedRate::new(rate_mbps * 1e6))]).run();
        let f = &res.flows[0];
        prop_assert!(f.total_acked + f.total_lost <= f.total_sent);
        prop_assert!(f.loss_rate >= 0.0 && f.loss_rate <= 1.0);
        prop_assert!(f.utilization >= 0.0);
    }

    /// Delivered throughput never exceeds link capacity (no free
    /// bandwidth), up to a 5% accounting tolerance on short runs.
    #[test]
    fn no_free_bandwidth(
        bw_mbps in 1.0f64..30.0,
        rate_mbps in 0.5f64..90.0,
    ) {
        let sc = Scenario::single(bw_mbps * 1e6, 10, 500, 0.0, 10);
        let res = Simulator::new(sc, vec![Box::new(FixedRate::new(rate_mbps * 1e6))]).run();
        prop_assert!(res.flows[0].throughput_bps <= bw_mbps * 1e6 * 1.05);
    }

    /// Mean RTT is never below the propagation floor.
    #[test]
    fn rtt_at_least_propagation(
        owd_ms in 5u64..150,
        rate_mbps in 0.5f64..20.0,
    ) {
        let sc = Scenario::single(20e6, owd_ms, 500, 0.0, 10);
        let res = Simulator::new(sc, vec![Box::new(FixedRate::new(rate_mbps * 1e6))]).run();
        let f = &res.flows[0];
        if f.total_acked > 0 {
            prop_assert!(f.mean_rtt_ms >= 2.0 * owd_ms as f64 - 1e-6);
        }
    }

    /// Jain's index is always in (0, 1] and is exactly 1 for equal
    /// allocations.
    #[test]
    fn jain_bounds(xs in proptest::collection::vec(0.0f64..100.0, 1..8)) {
        let j = jain_index(&xs);
        prop_assert!(j > 0.0 && j <= 1.0 + 1e-9);
    }

    #[test]
    fn jain_equal_is_one(x in 0.1f64..100.0, n in 1usize..8) {
        let xs = vec![x; n];
        prop_assert!((jain_index(&xs) - 1.0).abs() < 1e-9);
    }

    /// Landmark generation: every point is interior, normalized, and
    /// the count matches the closed form C(k-1, 2).
    #[test]
    fn landmark_invariants(k in 3usize..25) {
        let pts = landmarks(k);
        prop_assert_eq!(pts.len(), landmark_count(k));
        for w in &pts {
            prop_assert!(w.thr > 0.0 && w.lat > 0.0 && w.loss > 0.0);
            prop_assert!((w.thr + w.lat + w.loss - 1.0).abs() < 1e-5);
        }
    }

    /// Eq. 2 rewards are bounded by [0, 1] for in-range objectives.
    #[test]
    fn reward_bounded(
        a in 0.01f32..1.0, b in 0.01f32..1.0, c in 0.01f32..1.0,
        o1 in 0.0f32..1.0, o2 in 0.0f32..1.0, o3 in 0.0f32..1.0,
    ) {
        let w = Preference::new(a, b, c);
        let r = w.reward(o1, o2, o3);
        prop_assert!((0.0..=1.0 + 1e-6).contains(&r));
    }
}
