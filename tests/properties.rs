//! Property-based integration tests over the workspace invariants.

use mocc::core::{landmark_count, landmarks, run_experiment, Preference, TrainRegime, TrainSpec};
use mocc::eval::{
    BaselineContenders, CompetitionSpec, ContenderMix, ExperimentSpec, FlowLoad, PolicySpec,
    SchemeRegistry, SchemeSpec, SweepCell, SweepRunner, SweepSpec, TraceShape,
};
use mocc::netsim::cc::{Aimd, CongestionControl, FixedRate};
use mocc::netsim::metrics::jain_index;
use mocc::netsim::{BandwidthTrace, FlowSpec, Scenario, Simulator};
use mocc::nn::{Activation, ForwardTier, Matrix, Mlp, MlpScratch};
use mocc::rl::{GaussianPolicy, PolicyScratch};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Deterministically generates a randomized-but-valid-shaped
/// [`ExperimentSpec`] from a seed: random axes, every shape/load/mix
/// family, every mocc label form, optional policy sections. (Values
/// are drawn from small grids so the documents stay readable when a
/// failure prints one.)
fn random_experiment(seed: u64) -> ExperimentSpec {
    let mut rng = StdRng::seed_from_u64(seed);
    let schemes = [
        "cubic",
        "bbr",
        "vegas",
        "copa",
        "pcc-vivace",
        "mocc",
        "mocc:thr",
        "mocc:lat",
        "mocc:bal",
        "mocc:0.5,0.25,0.25",
    ];
    let pick = |rng: &mut StdRng| schemes[rng.gen_range(0..schemes.len())].to_string();
    let matrix = SweepSpec {
        bandwidth_mbps: vec![rng.gen_range(1.0f64..50.0), rng.gen_range(1.0f64..50.0)],
        owd_ms: vec![rng.gen_range(5u64..200)],
        queue_pkts: vec![rng.gen_range(10usize..5000)],
        loss: vec![0.0, rng.gen_range(0.0f64..0.5)],
        shapes: vec![
            TraceShape::Constant,
            TraceShape::Square {
                period_s: rng.gen_range(0.5f64..8.0),
            },
            TraceShape::Oscillating {
                steps: rng.gen_range(1usize..6),
                dwell_s: rng.gen_range(0.5f64..4.0),
            },
        ],
        loads: vec![
            FlowLoad::Steady(rng.gen_range(1usize..4)),
            FlowLoad::OnOffCross(rng.gen_range(1usize..3)),
        ],
        duration_s: rng.gen_range(4u64..40),
        mss_bytes: 1500,
        seed: rng.gen(),
        agent_mi: rng.gen_bool(0.5),
    };
    let mut exp = if rng.gen_bool(0.5) {
        let label = pick(&mut rng);
        let scheme = SchemeSpec::parse(&label).expect("generator labels parse");
        ExperimentSpec::from_sweep("prop-sweep", scheme, &matrix)
    } else {
        let comp = CompetitionSpec {
            mixes: vec![
                ContenderMix::Duel(vec![pick(&mut rng), pick(&mut rng), pick(&mut rng)]),
                {
                    let stair_scheme = pick(&mut rng);
                    ContenderMix::staircase(&stair_scheme, rng.gen_range(1usize..4), 2.0)
                },
            ],
            bandwidth_mbps: matrix.bandwidth_mbps.clone(),
            owd_ms: matrix.owd_ms.clone(),
            queue_pkts: matrix.queue_pkts.clone(),
            duration_s: matrix.duration_s,
            mss_bytes: 1500,
            seed: matrix.seed,
            agent_mi: matrix.agent_mi,
            tcp_baseline: "cubic".to_string(),
            fair_jain: rng.gen_range(0.5f64..1.0),
            fair_sustain_s: rng.gen_range(1u64..5),
        };
        ExperimentSpec::from_competition("prop-competition", &comp)
    };
    if rng.gen_bool(0.5) {
        exp.policy = Some(PolicySpec {
            path: rng.gen_bool(0.3).then(|| "models/agent.json".to_string()),
            seed: rng.gen(),
            config: if rng.gen_bool(0.5) { "fast" } else { "default" }.to_string(),
            initial_rate_frac: rng.gen_range(0.05f64..1.0),
            batch: rng.gen_range(1usize..64),
            fast_math: rng.gen_bool(0.25),
            ..PolicySpec::default()
        });
    }
    exp
}

/// Deterministically generates a randomized-but-valid [`TrainSpec`]
/// from a seed: every preset, regime, and range label, zoo-safe names
/// over the full allowed alphabet, and each override independently set
/// or left on the preset default.
fn random_train_spec(seed: u64) -> TrainSpec {
    let mut rng = StdRng::seed_from_u64(seed);
    let name_alphabet: Vec<char> = "abcXYZ019._-".chars().collect();
    let name: String = (0..rng.gen_range(1usize..16))
        .map(|_| name_alphabet[rng.gen_range(0..name_alphabet.len())])
        .collect();
    let name = if name.chars().all(|c| c == '.') {
        format!("{name}x")
    } else {
        name
    };
    let regimes = [
        TrainRegime::Individual,
        TrainRegime::Transfer,
        TrainRegime::TransferParallel,
    ];
    let opt =
        |rng: &mut StdRng, lo: usize, hi: usize| rng.gen_bool(0.5).then(|| rng.gen_range(lo..hi));
    TrainSpec {
        name,
        seed: rng.gen(),
        config: if rng.gen_bool(0.5) { "fast" } else { "default" }.to_string(),
        regime: regimes[rng.gen_range(0..regimes.len())],
        range: if rng.gen_bool(0.5) {
            "training"
        } else {
            "testing"
        }
        .to_string(),
        batch_envs: rng.gen_range(1usize..9),
        checkpoint_every: rng.gen_range(0usize..20),
        eval_episodes: rng.gen_range(1usize..4),
        boot_iters: opt(&mut rng, 1, 10),
        traverse_iters: opt(&mut rng, 1, 5),
        traverse_cycles: opt(&mut rng, 0, 4),
        rollout_steps: opt(&mut rng, 1, 100),
        episode_mis: opt(&mut rng, 1, 100),
        omega_step: opt(&mut rng, 3, 12),
    }
}

/// A short string of arbitrary printable-ish characters (including
/// grammar separators, digits, unicode) for feeding the parsers.
fn random_junk(rng: &mut StdRng) -> String {
    let alphabet: Vec<char> = "abcmox:+,.-_019 {}[]\"\\/λ∞".chars().collect();
    (0..rng.gen_range(0usize..12))
        .map(|_| alphabet[rng.gen_range(0..alphabet.len())])
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The simulator conserves packets exactly: every sent packet is
    /// acknowledged, declared lost, or still in flight at the horizon,
    /// for any link parameters and sending rate.
    #[test]
    fn packets_conserved(
        bw_mbps in 1.0f64..40.0,
        owd_ms in 5u64..100,
        queue in 10usize..2000,
        loss in 0.0f64..0.2,
        rate_mbps in 0.5f64..60.0,
    ) {
        let sc = Scenario::single(bw_mbps * 1e6, owd_ms, queue, loss, 10);
        let res = Simulator::new(sc, vec![Box::new(FixedRate::new(rate_mbps * 1e6))]).run();
        let f = &res.flows[0];
        prop_assert_eq!(f.total_acked + f.total_lost + f.pkts_in_flight, f.total_sent);
        prop_assert!(f.loss_rate >= 0.0 && f.loss_rate <= 1.0);
        prop_assert!(f.utilization >= 0.0);
    }

    /// Simulator event timestamps are monotone non-decreasing: the
    /// clock observed between processed events never runs backwards.
    #[test]
    fn event_timestamps_monotone(
        bw_mbps in 1.0f64..20.0,
        owd_ms in 5u64..80,
        loss in 0.0f64..0.1,
    ) {
        let sc = Scenario::single(bw_mbps * 1e6, owd_ms, 100, loss, 5);
        let mut sim = Simulator::new(sc, vec![Box::new(Aimd::new())]);
        let mut last = sim.now();
        while sim.process_next().is_some() {
            prop_assert!(sim.now() >= last, "clock ran backwards: {} < {}", sim.now(), last);
            last = sim.now();
        }
    }

    /// A parallel sweep produces results identical to a serial sweep of
    /// the same spec and seed — the determinism contract the golden
    /// fixtures depend on.
    #[test]
    fn sweep_parallel_equals_serial(seed in 0u64..1_000_000) {
        let spec = SweepSpec {
            bandwidth_mbps: vec![3.0, 6.0],
            owd_ms: vec![15],
            queue_pkts: vec![80],
            loss: vec![0.0, 0.02],
            shapes: vec![TraceShape::Square { period_s: 1.0 }],
            loads: vec![FlowLoad::Steady(1)],
            duration_s: 3,
            mss_bytes: 1500,
            seed,
            agent_mi: false,
        };
        let factory = |cell: &SweepCell| {
            (0..cell.scenario.flows.len())
                .map(|_| Box::new(Aimd::new()) as Box<dyn CongestionControl>)
                .collect::<Vec<_>>()
        };
        let serial = SweepRunner::with_threads(1).run_factory(&spec, "aimd", &factory);
        let parallel = SweepRunner::with_threads(3).run_factory(&spec, "aimd", &factory);
        prop_assert_eq!(serial.to_canonical_json(), parallel.to_canonical_json());
    }

    /// Flow churn preserves the simulator's core invariants: for any
    /// lifecycle schedule (flows joining and leaving at arbitrary
    /// times, including degenerate windows and starts beyond the
    /// horizon), packet conservation holds exactly per flow and the
    /// event clock never runs backwards.
    #[test]
    fn churn_conserves_packets_and_clock(
        lifecycles in proptest::collection::vec(
            (0.0f64..9.0, 0.1f64..10.0, 0.5f64..12.0), 1..4),
        owd_ms in 5u64..60,
        queue in 20usize..500,
        loss in 0.0f64..0.1,
    ) {
        let mut sc = Scenario::single(8e6, owd_ms, queue, loss, 8);
        sc.flows.clear();
        let mut ccs: Vec<Box<dyn CongestionControl>> = Vec::new();
        for &(start, len, rate_mbps) in &lifecycles {
            sc.flows.push(FlowSpec::running(start, start + len));
            ccs.push(Box::new(FixedRate::new(rate_mbps * 1e6)));
        }
        let mut sim = Simulator::new(sc, ccs);
        let mut last = sim.now();
        while sim.process_next().is_some() {
            prop_assert!(sim.now() >= last, "clock ran backwards under churn");
            last = sim.now();
        }
        for (i, f) in sim.result().flows.iter().enumerate() {
            prop_assert!(
                f.total_acked + f.total_lost + f.pkts_in_flight == f.total_sent,
                "flow {} leaked packets", i
            );
            prop_assert!(f.active_s > 0.0);
            prop_assert!(f.throughput_bps >= 0.0 && f.throughput_bps.is_finite());
        }
    }

    /// A parallel competition sweep (duels plus staircase churn)
    /// produces canonical JSON byte-identical to a serial sweep of the
    /// same spec and seed — the determinism contract the competition
    /// golden fixtures depend on.
    #[test]
    fn competition_parallel_equals_serial(seed in 0u64..1_000_000) {
        let spec = CompetitionSpec {
            mixes: vec![
                ContenderMix::duel("cubic", "vegas"),
                ContenderMix::staircase("bbr", 2, 2.0),
            ],
            duration_s: 6,
            seed,
            ..CompetitionSpec::quick()
        };
        let serial = SweepRunner::with_threads(1)
            .run_competition_factory(&spec, "mix", &BaselineContenders);
        let parallel = SweepRunner::with_threads(3)
            .run_competition_factory(&spec, "mix", &BaselineContenders);
        prop_assert_eq!(serial.to_canonical_json(), parallel.to_canonical_json());
    }

    /// Replay traces preserve the simulator's conservation law: for
    /// any recorded sample sequence (arbitrary gaps and rate swings,
    /// including traces whose first sample is after t = 0) every sent
    /// packet is acknowledged, lost, or still in flight at the
    /// horizon.
    #[test]
    fn replay_cells_conserve_packets(
        deltas in proptest::collection::vec((0.1f64..4.0, 0.5f64..40.0), 1..16),
        first_t in 0.0f64..3.0,
        owd_ms in 5u64..80,
        queue in 20usize..1000,
        loss in 0.0f64..0.1,
        rate_mbps in 0.5f64..60.0,
    ) {
        let mut t = first_t;
        let mut samples = Vec::new();
        for &(dt, mbps) in &deltas {
            samples.push((t, mbps * 1e6));
            t += dt;
        }
        let trace = BandwidthTrace::from_samples(&samples).expect("generated samples are valid");
        let mut sc = Scenario::single(trace.max_rate(), owd_ms, queue, loss, 10);
        sc.link.trace = trace;
        let res = Simulator::new(sc, vec![Box::new(FixedRate::new(rate_mbps * 1e6))]).run();
        let f = &res.flows[0];
        prop_assert_eq!(f.total_acked + f.total_lost + f.pkts_in_flight, f.total_sent);
        prop_assert!(f.loss_rate >= 0.0 && f.loss_rate <= 1.0);
        prop_assert!(f.throughput_bps.is_finite());
    }

    /// Replay cells keep the canonical-report determinism contract: a
    /// spec over a recorded trace file produces byte-identical reports
    /// across worker-thread counts and policy batch sizes — the same
    /// guarantee the golden replay fixture pins for the committed
    /// corpus, here over randomized traces.
    #[test]
    fn replay_reports_identical_across_threads_and_batches(seed in 0u64..100_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut samples = Vec::new();
        let mut t = 0.0f64;
        for _ in 0..rng.gen_range(2usize..12) {
            samples.push(format!("[{:.3},{:.3}]", t, rng.gen_range(0.5f64..30.0)));
            t += rng.gen_range(0.25f64..3.0);
        }
        let path = std::env::temp_dir().join(format!(
            "mocc-prop-replay-{}-{seed}.json",
            std::process::id()
        ));
        std::fs::write(
            &path,
            format!("{{\"samples\":[{}]}}", samples.join(",")),
        )
        .expect("write temp trace");
        let matrix = SweepSpec {
            bandwidth_mbps: vec![rng.gen_range(2.0f64..20.0)],
            owd_ms: vec![rng.gen_range(5u64..60)],
            queue_pkts: vec![rng.gen_range(20usize..500)],
            loss: vec![0.0],
            shapes: vec![TraceShape::replay(path.to_str().expect("utf-8 temp path"))],
            loads: vec![FlowLoad::Steady(1), FlowLoad::RpcCross(1)],
            duration_s: 4,
            mss_bytes: 1500,
            seed: rng.gen(),
            agent_mi: true,
        };
        let mut exp = ExperimentSpec::from_sweep(
            "prop-replay",
            SchemeSpec::parse("mocc").expect("mocc parses"),
            &matrix,
        );
        exp.policy = Some(PolicySpec { batch: 1, ..PolicySpec::default() });
        let serial =
            run_experiment(&SweepRunner::with_threads(1), &exp).expect("replay spec runs");
        exp.policy = Some(PolicySpec { batch: 8, ..PolicySpec::default() });
        let parallel =
            run_experiment(&SweepRunner::with_threads(3), &exp).expect("replay spec runs");
        std::fs::remove_file(&path).ok();
        prop_assert_eq!(serial.to_canonical_json(), parallel.to_canonical_json());
    }

    /// Delivered throughput never exceeds link capacity (no free
    /// bandwidth), up to a 5% accounting tolerance on short runs.
    #[test]
    fn no_free_bandwidth(
        bw_mbps in 1.0f64..30.0,
        rate_mbps in 0.5f64..90.0,
    ) {
        let sc = Scenario::single(bw_mbps * 1e6, 10, 500, 0.0, 10);
        let res = Simulator::new(sc, vec![Box::new(FixedRate::new(rate_mbps * 1e6))]).run();
        prop_assert!(res.flows[0].throughput_bps <= bw_mbps * 1e6 * 1.05);
    }

    /// Mean RTT is never below the propagation floor.
    #[test]
    fn rtt_at_least_propagation(
        owd_ms in 5u64..150,
        rate_mbps in 0.5f64..20.0,
    ) {
        let sc = Scenario::single(20e6, owd_ms, 500, 0.0, 10);
        let res = Simulator::new(sc, vec![Box::new(FixedRate::new(rate_mbps * 1e6))]).run();
        let f = &res.flows[0];
        if f.total_acked > 0 {
            prop_assert!(f.mean_rtt_ms >= 2.0 * owd_ms as f64 - 1e-6);
        }
    }

    /// Jain's index is always in (0, 1] and is exactly 1 for equal
    /// allocations.
    #[test]
    fn jain_bounds(xs in proptest::collection::vec(0.0f64..100.0, 1..8)) {
        let j = jain_index(&xs);
        prop_assert!(j > 0.0 && j <= 1.0 + 1e-9);
    }

    #[test]
    fn jain_equal_is_one(x in 0.1f64..100.0, n in 1usize..8) {
        let xs = vec![x; n];
        prop_assert!((jain_index(&xs) - 1.0).abs() < 1e-9);
    }

    /// Landmark generation: every point is interior, normalized, and
    /// the count matches the closed form C(k-1, 2).
    #[test]
    fn landmark_invariants(k in 3usize..25) {
        let pts = landmarks(k);
        prop_assert_eq!(pts.len(), landmark_count(k));
        for w in &pts {
            prop_assert!(w.thr > 0.0 && w.lat > 0.0 && w.loss > 0.0);
            prop_assert!((w.thr + w.lat + w.loss - 1.0).abs() < 1e-5);
        }
    }

    /// Batched policy inference is bitwise identical to the scalar
    /// path — across layer shapes, batch sizes, and RNG streams. This
    /// pins the contract that batching flows/cells can never perturb a
    /// trajectory.
    #[test]
    fn act_batch_bitwise_equals_scalar(
        net_seed in 0u64..1_000,
        rng_seed in 0u64..1_000,
        obs_dim in 1usize..12,
        h1 in 1usize..48,
        h2 in 0usize..24,
        rows in 1usize..40,
    ) {
        let mut nrng = StdRng::seed_from_u64(net_seed);
        let hidden: Vec<usize> = if h2 == 0 { vec![h1] } else { vec![h1, h2] };
        let pol = GaussianPolicy::new(obs_dim, &hidden, &mut nrng);
        let obs = Matrix::from_fn(rows, obs_dim, |r, c| {
            // Deterministic mix with exact zeros to hit the sparsity skip.
            if (r + c) % 4 == 0 { 0.0 } else { ((r * 31 + c * 7) % 17) as f32 * 0.13 - 1.0 }
        });
        let mut scratch = PolicyScratch::default();
        let mut batched = Vec::new();
        let mut rng_batch = StdRng::seed_from_u64(rng_seed);
        pol.act_batch(&obs, &mut rng_batch, &mut batched, &mut scratch);
        let mut means = Vec::new();
        pol.mean_action_batch(&obs, &mut means, &mut scratch);
        let mut rng_scalar = StdRng::seed_from_u64(rng_seed);
        prop_assert_eq!(batched.len(), rows);
        for r in 0..rows {
            let (a, lp) = pol.act(obs.row(r), &mut rng_scalar);
            prop_assert_eq!(batched[r].0.to_bits(), a.to_bits());
            prop_assert_eq!(batched[r].1.to_bits(), lp.to_bits());
            prop_assert_eq!(means[r].to_bits(), pol.mean_action(obs.row(r)).to_bits());
        }
    }

    /// The fast-math tier tracks the scalar reference across random
    /// layer shapes and batch sizes: pre-activations are bitwise
    /// shared, so the whole-network divergence stays within a small
    /// multiple of the documented per-tanh kernel bound
    /// (`mocc::nn::simd::FAST_TANH_MAX_ABS_ERROR`), and batched fast
    /// rows are bitwise identical to single-row fast inference.
    #[test]
    fn fast_tier_tracks_scalar_forward_within_bound(
        net_seed in 0u64..1_000,
        obs_dim in 1usize..12,
        h1 in 1usize..48,
        h2 in 0usize..24,
        rows in 1usize..40,
    ) {
        let mut nrng = StdRng::seed_from_u64(net_seed);
        let mut sizes = vec![obs_dim, h1];
        if h2 > 0 { sizes.push(h2); }
        sizes.push(1);
        let mlp = Mlp::new(&sizes, Activation::Tanh, Activation::Linear, &mut nrng);
        let obs = Matrix::from_fn(rows, obs_dim, |r, c| {
            // Deterministic mix with exact zeros to hit the sparsity skip.
            if (r + c) % 4 == 0 { 0.0 } else { ((r * 31 + c * 7) % 17) as f32 * 0.13 - 1.0 }
        });
        let mut scratch = MlpScratch::default();
        let mut fast = Matrix::zeros(0, 0);
        mlp.forward_batch_into_tier(&obs, &mut fast, &mut scratch, ForwardTier::Fast);
        let fast_out: Vec<f32> = (0..rows).map(|r| fast.get(r, 0)).collect();
        let mut scalar = Matrix::zeros(0, 0);
        mlp.forward_batch_into_tier(&obs, &mut scalar, &mut scratch, ForwardTier::Scalar);
        for (r, &f) in fast_out.iter().enumerate() {
            let s = scalar.get(r, 0);
            prop_assert!(
                (f - s).abs() <= 1e-3,
                "row {}: fast {} vs scalar {} diverged past the bound", r, f, s
            );
            let single = mlp.forward_into_tier(obs.row(r), &mut scratch, ForwardTier::Fast)[0];
            prop_assert_eq!(single.to_bits(), f.to_bits());
        }
    }

    /// Serde round trip is the identity over randomized experiment
    /// documents: parse(serialize(spec)) == spec, and the canonical
    /// JSON form is a fixed point. The generator covers both workload
    /// kinds, every trace shape/load family, duels and staircases,
    /// every mocc label form, and optional policy sections.
    #[test]
    fn experiment_spec_round_trip_is_identity(seed in 0u64..1_000_000) {
        let exp = random_experiment(seed);
        let json = exp.to_canonical_json();
        let back = ExperimentSpec::from_json(&json);
        prop_assert!(back.is_ok(), "round trip failed: {:?}\n{json}", back.err());
        let back = back.unwrap();
        prop_assert_eq!(&back, &exp);
        prop_assert_eq!(back.to_canonical_json(), json);
    }

    /// Every registry name and every `mocc:` form parses through the
    /// shared grammar and resolves against the built-in registry.
    #[test]
    fn every_registry_name_and_mocc_form_parses(t in 0.0f64..1.0, l in 0.0f64..1.0) {
        let reg = SchemeRegistry::builtin();
        for name in reg.names() {
            prop_assert!(reg.parse(name).is_ok(), "{name}");
        }
        for label in ["mocc", "mocc:thr", "mocc:lat", "mocc:bal"] {
            prop_assert!(reg.parse(label).is_ok(), "{label}");
        }
        // Any non-degenerate weight triple is a valid mocc label.
        let label = format!("mocc:{t},{l},1");
        let spec = reg.parse(&label);
        prop_assert!(spec.is_ok(), "{label}: {:?}", spec.err());
        let spec = spec.unwrap();
        prop_assert_eq!(spec.label(), label.as_str());
    }

    /// Malformed inputs yield typed `SpecError`s, never panics: junk
    /// scheme labels, junk mix labels, and junk JSON documents all
    /// come back as `Err`.
    #[test]
    fn malformed_specs_error_instead_of_panicking(seed in 0u64..1_000_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let junk = random_junk(&mut rng);
        // Parsers must return (not panic) on arbitrary input...
        let _ = SchemeSpec::parse(&junk);
        let _ = ContenderMix::parse(&junk);
        let _ = TraceShape::parse(&junk);
        let _ = FlowLoad::parse(&junk);
        let _ = ExperimentSpec::from_json(&junk);
        // ... and recognizably malformed labels are always errors.
        prop_assert!(SchemeSpec::parse(&format!("mocc:{junk},x")).is_err());
        prop_assert!(ContenderMix::parse(&format!("melee:{junk}")).is_err());
        let doc = format!("{{\"kind\":\"sweep\",\"name\":\"x\",\"scheme\":17,\"junk\":{junk:?}}}");
        prop_assert!(ExperimentSpec::from_json(&doc).is_err());
    }

    /// Serde round trip is the identity over randomized training
    /// documents: parse(serialize(spec)) == spec, the canonical JSON
    /// form is a fixed point, and generated documents validate — the
    /// same battery [`ExperimentSpec`] passes, applied to the training
    /// side of the spec surface.
    #[test]
    fn train_spec_round_trip_is_identity(seed in 0u64..1_000_000) {
        let spec = random_train_spec(seed);
        let json = spec.to_canonical_json();
        let back = TrainSpec::from_json(&json);
        prop_assert!(back.is_ok(), "round trip failed: {:?}\n{json}", back.err());
        let back = back.unwrap();
        prop_assert_eq!(&back, &spec);
        prop_assert_eq!(back.to_canonical_json(), json);
        prop_assert!(spec.validate().is_ok(), "generated spec must validate");
        // The schedule is well-defined (possibly empty when every
        // iteration knob is zeroed out by the generator).
        prop_assert!(spec.schedule_len().is_ok());
    }

    /// The digest is the spec's identity over the generator space:
    /// equal documents agree, and any single-field mutation moves it.
    #[test]
    fn train_spec_digest_tracks_identity(seed in 0u64..1_000_000) {
        let spec = random_train_spec(seed);
        prop_assert_eq!(random_train_spec(seed).digest(), spec.digest());
        let mut renamed = spec.clone();
        renamed.name.push('x');
        prop_assert_ne!(renamed.digest(), spec.digest());
        let mut reseeded = spec.clone();
        reseeded.seed = reseeded.seed.wrapping_add(1);
        prop_assert_ne!(reseeded.digest(), spec.digest());
        let mut rebatched = spec.clone();
        rebatched.batch_envs += 1;
        prop_assert_ne!(rebatched.digest(), spec.digest());
    }

    /// Malformed training documents yield typed `SpecError`s, never
    /// panics: junk text, junk fields, wrong kinds, and misspelled
    /// (unknown) keys all come back as `Err`.
    #[test]
    fn malformed_train_specs_error_instead_of_panicking(seed in 0u64..1_000_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let junk = random_junk(&mut rng);
        let _ = TrainSpec::from_json(&junk);
        // A misspelled optional field must be rejected, not defaulted.
        let doc = format!(
            "{{\"kind\":\"train\",\"name\":\"x\",\"seed\":1,\"boot_iter\":{}}}",
            rng.gen_range(0u64..9)
        );
        prop_assert!(TrainSpec::from_json(&doc).is_err());
        // An experiment document is never a training document.
        let exp = random_experiment(seed).to_canonical_json();
        prop_assert!(TrainSpec::from_json(&exp).is_err());
    }

    /// Eq. 2 rewards are bounded by [0, 1] for in-range objectives.
    #[test]
    fn reward_bounded(
        a in 0.01f32..1.0, b in 0.01f32..1.0, c in 0.01f32..1.0,
        o1 in 0.0f32..1.0, o2 in 0.0f32..1.0, o3 in 0.0f32..1.0,
    ) {
        let w = Preference::new(a, b, c);
        let r = w.reward(o1, o2, o3);
        prop_assert!((0.0..=1.0 + 1e-6).contains(&r));
    }
}
