//! Tier-1 guarantees of the `mocc-audit` static-analysis pass, end to
//! end through the umbrella crate: the workspace itself is clean, the
//! JSON report is canonical and byte-stable, and every rule both fires
//! on its fixture snippet and is silenced by the fixture's
//! `audit:allow` twin (tests/fixtures/audit/).

use mocc::audit::manifest::audit_manifest;
use mocc::audit::rules::{audit_source, RULES};
use mocc::audit::{audit_workspace, Finding};
use std::path::{Path, PathBuf};

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

fn fixture(name: &str) -> String {
    let path = repo_root().join("tests/fixtures/audit").join(name);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("reading fixture {}: {e}", path.display()))
}

/// Audits one fixture through the scanner matching its extension.
fn audit_fixture(name: &str) -> Vec<Finding> {
    let text = fixture(name);
    if Path::new(name).extension().is_some_and(|e| e == "toml") {
        audit_manifest(name, &text)
    } else {
        audit_source(name, &text)
    }
}

/// The workspace must satisfy its own contracts: `mocc audit` exits
/// clean on this repository.
#[test]
fn workspace_is_audit_clean() {
    let report = audit_workspace(&repo_root()).unwrap();
    assert!(
        report.is_clean(),
        "the workspace must be audit-clean; findings:\n{}",
        report.to_text()
    );
    assert!(report.files_scanned > 50, "the scan must cover the crates");
}

/// The JSON report is canonical: byte-stable across runs, keys in
/// sorted order, newline-terminated.
#[test]
fn json_report_is_canonical_and_stable() {
    let a = audit_workspace(&repo_root()).unwrap().to_json();
    let b = audit_workspace(&repo_root()).unwrap().to_json();
    assert_eq!(a, b, "two audits of the same tree must emit equal bytes");
    assert!(a.starts_with("{\"files_scanned\":"));
    assert!(a.ends_with("]}\n") || a.ends_with("}\n"));
}

/// Every rule fires on its `_fires` fixture and is silenced by its
/// `_allowed` twin — including that the twin's allows are all consumed
/// (no stale-allow findings).
#[test]
fn each_rule_fires_and_is_suppressed_by_its_allow_twin() {
    let cases = [
        ("clock-discipline", "clock_discipline", "rs"),
        ("no-randomized-containers", "no_randomized_containers", "rs"),
        ("unsafe-hygiene", "unsafe_hygiene", "rs"),
        ("float-determinism", "float_determinism", "rs"),
        ("env-discipline", "env_discipline", "rs"),
        ("vendoring-audit", "vendoring_audit", "toml"),
    ];
    for (rule, stem, ext) in cases {
        let fired = audit_fixture(&format!("{stem}_fires.{ext}"));
        assert!(
            fired.iter().any(|f| f.rule == rule),
            "{rule} must fire on its fixture; got: {fired:?}"
        );
        let allowed = audit_fixture(&format!("{stem}_allowed.{ext}"));
        assert!(
            allowed.is_empty(),
            "{rule}'s allow twin must be finding-free (allows consumed); got: {allowed:?}"
        );
    }
}

/// The float-determinism fixture exercises all three forbidden shapes.
#[test]
fn float_fixture_covers_all_three_shapes() {
    let fired = audit_fixture("float_determinism_fires.rs");
    let floats: Vec<_> = fired
        .iter()
        .filter(|f| f.rule == "float-determinism")
        .collect();
    assert!(
        floats.len() >= 3,
        "expected mul_add, partial_cmp, and fold findings; got: {floats:?}"
    );
}

/// Findings carry an actionable location and hint.
#[test]
fn findings_point_at_file_line_and_hint() {
    let fired = audit_fixture("env_discipline_fires.rs");
    let f = fired
        .iter()
        .find(|f| f.rule == "env-discipline")
        .expect("env fixture must fire");
    assert_eq!(f.file, "env_discipline_fires.rs");
    assert!(f.line > 0);
    assert!(!f.hint.is_empty(), "every finding carries a fix hint");
}

/// The rule table the CLI and docs enumerate stays in sync with the
/// fixture corpus: every non-meta rule has fixture coverage above.
#[test]
fn rule_table_matches_fixture_coverage() {
    let covered = [
        "clock-discipline",
        "no-randomized-containers",
        "unsafe-hygiene",
        "float-determinism",
        "env-discipline",
        "vendoring-audit",
        "allow-syntax",
    ];
    for r in RULES {
        assert!(
            covered.contains(&r.id),
            "rule {} has no fixture coverage; add one under tests/fixtures/audit/",
            r.id
        );
    }
}
